package coherence

import (
	"encoding/binary"
	"math"
	"testing"

	"cohort/internal/config"
)

// FuzzReleaseTime drives the closed-form release computation with arbitrary
// (fetched, req, θ) triples and checks the algebraic contract of §III-B:
// the release is never before the request, lands on an expiry boundary of
// the countdown counter, never wraps negative, and — for small inputs —
// agrees with a naive repeated-addition reference.
func FuzzReleaseTime(f *testing.F) {
	f.Add(int64(0), int64(10), int64(5))
	f.Add(int64(100), int64(40), int64(2))
	f.Add(int64(-1), int64(0), int64(1))
	f.Add(int64(0), int64(0), int64(0))
	f.Add(int64(7), int64(7), int64(-1))
	f.Add(int64(math.MaxInt64-3), int64(math.MaxInt64), int64(math.MaxInt32))
	f.Add(int64(math.MinInt64), int64(math.MaxInt64), int64(3))
	f.Fuzz(func(t *testing.T, fetched, req, rawTheta int64) {
		if rawTheta < int64(config.TimerMSI) || rawTheta > math.MaxInt32 {
			t.Skip("theta outside the int32 register")
		}
		theta := config.Timer(rawTheta)
		rel := ReleaseTime(fetched, req, theta)

		if !theta.Timed() {
			if rel != req {
				t.Fatalf("untimed θ=%d: release %d, want req %d", theta, rel, req)
			}
			return
		}
		if rel < req {
			t.Fatalf("release %d before request %d (fetched=%d θ=%d)", rel, req, fetched, theta)
		}
		if rel < fetched {
			t.Fatalf("release %d before fetch %d (req=%d θ=%d): wrapped", rel, fetched, req, theta)
		}
		if rel != math.MaxInt64 {
			// Non-saturated releases land exactly on an expiry boundary
			// fetched + k·θ, and on the FIRST boundary at or after the
			// request (the counter replenishes, it never skips ahead).
			// Two's-complement subtraction in uint64 is exact for
			// rel ≥ fetched even when the span exceeds MaxInt64.
			diff := uint64(rel) - uint64(fetched)
			th := uint64(theta)
			if diff%th != 0 {
				t.Fatalf("release %d not on an expiry boundary (fetched=%d θ=%d)", rel, fetched, theta)
			}
			var dreq uint64
			if req > fetched {
				dreq = uint64(req) - uint64(fetched)
			}
			if diff > th && diff-th >= dreq {
				t.Fatalf("release %d skipped an expiry ≥ req %d (fetched=%d θ=%d)", rel, req, fetched, theta)
			}
		}

		// Differential oracle: for small operands, repeated addition from
		// the fill cycle must reach the same expiry. Bounding the operands
		// (not req−fetched, which can wrap) keeps the loop short.
		small := func(v int64) bool { return v > -(1 << 20) && v < 1<<20 }
		if theta <= 1<<12 && small(fetched) && small(req) {
			naive := fetched + int64(theta)
			for naive < req {
				naive += int64(theta)
			}
			if rel != naive {
				t.Fatalf("closed form %d != naive %d (fetched=%d req=%d θ=%d)", rel, naive, fetched, req, theta)
			}
		}
	})
}

// FuzzModeLUT decodes arbitrary bytes into a timer LUT and checks that
// construction and lookup fail closed: invalid entries are rejected at build
// time, out-of-range modes are rejected at lookup time, and every accepted
// lookup returns exactly the entry the mode indexes.
func FuzzModeLUT(f *testing.F) {
	f.Add([]byte{0xff, 0xff, 0x00, 0x05}, 1) // [−1, 5]
	f.Add([]byte{0x00, 0x00}, 2)             // [0], mode out of range
	f.Add([]byte{0x7f, 0xff, 0x00, 0x02, 0x00, 0x00}, 3)
	f.Add([]byte{}, 1) // empty LUT must be rejected
	f.Fuzz(func(t *testing.T, raw []byte, mode int) {
		var entries []config.Timer
		for i := 0; i+1 < len(raw); i += 2 {
			entries = append(entries, config.Timer(int16(binary.BigEndian.Uint16(raw[i:]))))
		}
		lut, err := NewModeLUT(entries)
		valid := len(entries) > 0
		for _, th := range entries {
			if !th.Valid() {
				valid = false
			}
		}
		if valid != (err == nil) {
			t.Fatalf("NewModeLUT(%v) err=%v, want failure=%v", entries, err, !valid)
		}
		if err != nil {
			return
		}
		if lut.Modes() != len(entries) || lut.StorageBits() != 16*len(entries) {
			t.Fatalf("LUT metadata: modes=%d bits=%d for %d entries", lut.Modes(), lut.StorageBits(), len(entries))
		}
		th, err := lut.Lookup(mode)
		if mode < 1 || mode > len(entries) {
			if err == nil {
				t.Fatalf("Lookup(%d) accepted out-of-range mode (LUT has %d modes)", mode, len(entries))
			}
			return
		}
		if err != nil {
			t.Fatalf("Lookup(%d): %v", mode, err)
		}
		if th != entries[mode-1] {
			t.Fatalf("Lookup(%d) = %d, want %d", mode, th, entries[mode-1])
		}
	})
}

// TestReleaseTimeBoundaryThetaZero pins the θ = 0 (no-cache) edge: the line
// is handed over exactly at the request, for any fetch/request relation.
func TestReleaseTimeBoundaryThetaZero(t *testing.T) {
	cases := []struct{ fetched, req int64 }{
		{0, 0}, {0, 100}, {100, 0}, {math.MinInt64, math.MaxInt64},
		{math.MaxInt64, math.MinInt64},
	}
	for _, c := range cases {
		if got := ReleaseTime(c.fetched, c.req, config.TimerNoCache); got != c.req {
			t.Errorf("ReleaseTime(%d, %d, 0) = %d, want %d", c.fetched, c.req, got, c.req)
		}
	}
}

// TestReleaseTimeBoundaryThetaMaxInt32 pins the far end of the register:
// even an out-of-spec θ = MaxInt32 (beyond the 16-bit TimerMax the paper
// allows) must saturate rather than wrap, because a wrapped negative release
// would silently disable the timer protection.
func TestReleaseTimeBoundaryThetaMaxInt32(t *testing.T) {
	theta := config.Timer(math.MaxInt32)
	if got := ReleaseTime(0, 1, theta); got != math.MaxInt32 {
		t.Errorf("ReleaseTime(0, 1, MaxInt32) = %d, want %d", got, math.MaxInt32)
	}
	if got := ReleaseTime(math.MaxInt64-3, math.MaxInt64, theta); got != math.MaxInt64 {
		t.Errorf("near-MaxInt64 fetch: got %d, want saturation at MaxInt64", got)
	}
	if got := ReleaseTime(math.MinInt64, math.MaxInt64, theta); got != math.MaxInt64 {
		t.Errorf("full-range span: got %d, want saturation at MaxInt64", got)
	}
	// One replenish period below the saturation point stays exact.
	if got := ReleaseTime(100, 50, theta); got != 100+int64(theta) {
		t.Errorf("ReleaseTime(100, 50, MaxInt32) = %d, want %d", got, 100+int64(theta))
	}
}
