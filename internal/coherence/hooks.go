package coherence

// TestHooks injects seeded faults into the coherence mechanics for the
// correctness tooling's mutation tests (and nothing else): each hook breaks
// one rule so a test can prove the invariant checker and the exhaustive model
// checker fail closed. All hooks default to off; production code must never
// set them.
var TestHooks struct {
	// LUTLookupOffByOne makes ModeLUT.Lookup index the table at
	// mode % Modes() instead of mode−1 — the classic off-by-one a 1-based
	// table invites. With a two-mode LUT it swaps both entries, so every
	// reachable mode switch programs the wrong θ.
	LUTLookupOffByOne bool
}
