package coherence

import (
	"fmt"
	"sort"

	"cohort/internal/trace"
)

// Waiter is one broadcast request queued behind a line's current owner.
type Waiter struct {
	// Core is the requesting core.
	Core int
	// Write reports whether the request is a store (GetM) or a load (GetS).
	Write bool
	// Broadcast is the cycle the request became globally visible.
	Broadcast int64
}

// LineInfo is the simulator's global view of one cache line: who owns it,
// which cores hold read-only copies, the FIFO of broadcast requesters
// waiting behind the owner, and a write-version counter used to check data
// propagation in tests. A snooping system has no physical directory; this
// structure is the simulator's bookkeeping of what the snoops imply.
type LineInfo struct {
	// Owner is the core holding the line in Modified state, or MemOwner
	// when the shared memory owns it.
	Owner int
	// OwnerFetch is the cycle the owner (re)installed the line; the base of
	// the owner's timer epochs. Meaningless when Owner == MemOwner.
	OwnerFetch int64
	// Sharers is a bitmask of cores holding the line in Shared state.
	Sharers uint64
	// Waiters is the FIFO of broadcast requests not yet granted data.
	Waiters []Waiter
	// Version counts committed writes to the line.
	Version uint64
	// OwnerReleased marks that the owner's copy was invalidated at timer
	// expiry (or evicted) while the data transfer to the head waiter is
	// still pending; the data sits in the transfer buffer.
	OwnerReleased bool
	// OwnerReleasedAt is the cycle OwnerReleased became true.
	OwnerReleasedAt int64
}

// PendingInv reports whether any remote requester waits for the line — the
// PendingInv signal of Fig. 3 as seen by the owner.
func (li *LineInfo) PendingInv() bool { return len(li.Waiters) > 0 }

// HeadWaiter returns the oldest waiter, or nil.
func (li *LineInfo) HeadWaiter() *Waiter {
	if len(li.Waiters) == 0 {
		return nil
	}
	return &li.Waiters[0]
}

// Enqueue appends a waiter; requests from the same core must not be queued
// twice (one outstanding miss per core per line).
func (li *LineInfo) Enqueue(w Waiter) error {
	for _, q := range li.Waiters {
		if q.Core == w.Core {
			return fmt.Errorf("coherence: core %d already waiting for line", w.Core)
		}
	}
	li.Waiters = append(li.Waiters, w)
	return nil
}

// PopWaiter removes and returns the oldest waiter.
func (li *LineInfo) PopWaiter() Waiter {
	w := li.Waiters[0]
	li.Waiters = li.Waiters[1:]
	return w
}

// AddSharer marks core as holding a Shared copy.
func (li *LineInfo) AddSharer(core int) { li.Sharers |= 1 << uint(core) }

// RemoveSharer clears core's Shared copy.
func (li *LineInfo) RemoveSharer(core int) { li.Sharers &^= 1 << uint(core) }

// IsSharer reports whether core holds a Shared copy.
func (li *LineInfo) IsSharer(core int) bool { return li.Sharers&(1<<uint(core)) != 0 }

// SharerList returns the sharer cores in ascending order (deterministic).
func (li *LineInfo) SharerList(n int) []int {
	var out []int
	for c := 0; c < n; c++ {
		if li.IsSharer(c) {
			out = append(out, c)
		}
	}
	return out
}

// Directory maps line addresses to their global coherence state.
type Directory struct {
	lines map[uint64]*LineInfo
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{lines: make(map[uint64]*LineInfo)}
}

// Get returns the LineInfo for lineAddr, creating a memory-owned record on
// first touch.
func (d *Directory) Get(lineAddr uint64) *LineInfo {
	li, ok := d.lines[lineAddr]
	if !ok {
		li = &LineInfo{Owner: MemOwner}
		d.lines[lineAddr] = li
	}
	return li
}

// Peek returns the LineInfo if it exists, without creating one.
func (d *Directory) Peek(lineAddr uint64) *LineInfo { return d.lines[lineAddr] }

// Len returns the number of tracked lines.
func (d *Directory) Len() int { return len(d.lines) }

// ForEach visits every tracked line in ascending address order. The sort
// makes the visit order — and therefore any event the callback schedules —
// identical between runs; mode switches iterate the directory on the hot
// path, so this must never fall back to raw map order.
func (d *Directory) ForEach(fn func(lineAddr uint64, li *LineInfo)) {
	addrs := make([]uint64, 0, len(d.lines))
	for la := range d.lines {
		addrs = append(addrs, la)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, la := range addrs {
		fn(la, d.lines[la])
	}
}

// RequestKind converts a trace access kind into the waiter Write flag.
func RequestKind(k trace.Kind) bool { return k == trace.Write }
