package coherence

import (
	"fmt"
	"sort"

	"cohort/internal/trace"
)

// Waiter is one broadcast request queued behind a line's current owner.
type Waiter struct {
	// Core is the requesting core.
	Core int
	// Write reports whether the request is a store (GetM) or a load (GetS).
	Write bool
	// Broadcast is the cycle the request became globally visible.
	Broadcast int64
}

// LineInfo is the simulator's global view of one cache line: who owns it,
// which cores hold read-only copies, the FIFO of broadcast requesters
// waiting behind the owner, and a write-version counter used to check data
// propagation in tests. A snooping system has no physical directory; this
// structure is the simulator's bookkeeping of what the snoops imply.
type LineInfo struct {
	// Owner is the core holding the line in Modified state, or MemOwner
	// when the shared memory owns it.
	Owner int
	// OwnerFetch is the cycle the owner (re)installed the line; the base of
	// the owner's timer epochs. Meaningless when Owner == MemOwner.
	OwnerFetch int64
	// Sharers is a bitmask of cores holding the line in Shared state.
	Sharers uint64
	// Waiters is the FIFO of broadcast requests not yet granted data.
	Waiters []Waiter
	// Version counts committed writes to the line.
	Version uint64
	// OwnerReleased marks that the owner's copy was invalidated at timer
	// expiry (or evicted) while the data transfer to the head waiter is
	// still pending; the data sits in the transfer buffer.
	OwnerReleased bool
	// OwnerReleasedAt is the cycle OwnerReleased became true.
	OwnerReleasedAt int64
}

// PendingInv reports whether any remote requester waits for the line — the
// PendingInv signal of Fig. 3 as seen by the owner.
func (li *LineInfo) PendingInv() bool { return len(li.Waiters) > 0 }

// HeadWaiter returns the oldest waiter, or nil.
func (li *LineInfo) HeadWaiter() *Waiter {
	if len(li.Waiters) == 0 {
		return nil
	}
	return &li.Waiters[0]
}

// Enqueue appends a waiter; requests from the same core must not be queued
// twice (one outstanding miss per core per line).
func (li *LineInfo) Enqueue(w Waiter) error {
	for _, q := range li.Waiters {
		if q.Core == w.Core {
			return fmt.Errorf("coherence: core %d already waiting for line", w.Core) //cohort:allow hotalloc: protocol-violation error path; the transaction aborts
		}
	}
	if li.Waiters == nil {
		// First waiter ever on this line: size the FIFO for a typical core
		// count up front so steady-state enqueues never reallocate (PopWaiter
		// preserves the capacity).
		li.Waiters = make([]Waiter, 0, 4) //cohort:allow hotalloc: first-touch FIFO sizing, once per line
	}
	li.Waiters = append(li.Waiters, w) //cohort:allow hotalloc: within capacity unless >4 cores queue; PopWaiter keeps the backing array
	return nil
}

// PopWaiter removes and returns the oldest waiter. The shift-copy keeps the
// slice anchored to its backing array (a reslice li.Waiters[1:] would walk
// off the front and force a fresh allocation on every future enqueue).
func (li *LineInfo) PopWaiter() Waiter {
	w := li.Waiters[0]
	n := len(li.Waiters) - 1
	copy(li.Waiters, li.Waiters[1:])
	li.Waiters = li.Waiters[:n]
	return w
}

// AddSharer marks core as holding a Shared copy.
func (li *LineInfo) AddSharer(core int) { li.Sharers |= 1 << uint(core) }

// RemoveSharer clears core's Shared copy.
func (li *LineInfo) RemoveSharer(core int) { li.Sharers &^= 1 << uint(core) }

// IsSharer reports whether core holds a Shared copy.
func (li *LineInfo) IsSharer(core int) bool { return li.Sharers&(1<<uint(core)) != 0 }

// SharerList returns the sharer cores in ascending order (deterministic).
func (li *LineInfo) SharerList(n int) []int {
	var out []int
	for c := 0; c < n; c++ {
		if li.IsSharer(c) {
			out = append(out, c)
		}
	}
	return out
}

// dirSlot is one open-addressing table slot; empty iff li == nil (so address
// 0 needs no sentinel).
type dirSlot struct {
	addr uint64
	li   *LineInfo
}

const (
	// dirInitSlots is the initial table size (power of two).
	dirInitSlots = 256
	// dirSlabLines is the LineInfo arena chunk size: records are allocated 64
	// at a time from fixed-capacity slabs, so &slab[i] pointers stay stable
	// across directory growth (callers hold *LineInfo across events).
	dirSlabLines = 64
	// dirHashMul is the Fibonacci-hashing multiplier (odd ⇒ bijective mod
	// 2^k), spreading the low, often-sequential bits of line addresses.
	dirHashMul = 0x9E3779B97F4A7C15
)

// Directory maps line addresses to their global coherence state. Lines are
// only ever added (the protocol never forgets a line), which lets the table
// be a simple linear-probe open-addressing map — no tombstones — in front of
// a slab arena, with a one-entry cache absorbing the back-to-back Get/Peek
// runs of a single transaction (coreWake → completeMiss → evictL1 touch the
// same line several times in one event).
type Directory struct {
	slots []dirSlot
	mask  uint64
	n     int

	// addrs lists tracked addresses in insertion order; ForEach sorts it
	// lazily (sorted tracks whether it is currently ascending), preserving
	// the documented ascending-address iteration contract without a per-call
	// copy-and-sort.
	addrs  []uint64
	sorted bool

	arena []LineInfo // current slab (fixed cap; a full slab is abandoned to its pointers)

	lastAddr uint64    // one-entry lookup cache
	lastLI   *LineInfo // nil until the first hit
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		slots:  make([]dirSlot, dirInitSlots),
		mask:   dirInitSlots - 1,
		sorted: true,
	}
}

// Get returns the LineInfo for lineAddr, creating a memory-owned record on
// first touch.
//
//cohort:hotpath
func (d *Directory) Get(lineAddr uint64) *LineInfo {
	if d.lastLI != nil && d.lastAddr == lineAddr {
		return d.lastLI
	}
	i := (lineAddr * dirHashMul) & d.mask
	for {
		s := &d.slots[i]
		if s.li == nil {
			li := d.insert(i, lineAddr)
			d.lastAddr, d.lastLI = lineAddr, li
			return li
		}
		if s.addr == lineAddr {
			d.lastAddr, d.lastLI = lineAddr, s.li
			return s.li
		}
		i = (i + 1) & d.mask
	}
}

// Peek returns the LineInfo if it exists, without creating one.
//
//cohort:hotpath
func (d *Directory) Peek(lineAddr uint64) *LineInfo {
	if d.lastLI != nil && d.lastAddr == lineAddr {
		return d.lastLI
	}
	i := (lineAddr * dirHashMul) & d.mask
	for {
		s := &d.slots[i]
		if s.li == nil {
			return nil
		}
		if s.addr == lineAddr {
			d.lastAddr, d.lastLI = lineAddr, s.li
			return s.li
		}
		i = (i + 1) & d.mask
	}
}

// insert fills the empty slot found at index i with a fresh record for addr,
// growing the table first when the next insert would cross 75% load.
func (d *Directory) insert(i uint64, addr uint64) *LineInfo {
	if (d.n+1)*4 > len(d.slots)*3 {
		d.grow()
		i = d.probeEmpty(addr)
	}
	li := d.alloc()
	d.slots[i] = dirSlot{addr: addr, li: li}
	d.n++
	if d.sorted && len(d.addrs) > 0 && addr < d.addrs[len(d.addrs)-1] {
		d.sorted = false
	}
	d.addrs = append(d.addrs, addr) //cohort:allow hotalloc: first touch of a line only; steady state takes Get's lookup path
	return li
}

// probeEmpty returns the index of the empty slot addr hashes to (addr is
// known to be absent).
func (d *Directory) probeEmpty(addr uint64) uint64 {
	i := (addr * dirHashMul) & d.mask
	for d.slots[i].li != nil {
		i = (i + 1) & d.mask
	}
	return i
}

// grow doubles the table and reinserts every occupied slot.
func (d *Directory) grow() {
	old := d.slots
	d.slots = make([]dirSlot, 2*len(old)) //cohort:allow hotalloc: table doubling, amortized O(1) per first touch
	d.mask = uint64(len(d.slots) - 1)
	for _, s := range old {
		if s.li != nil {
			d.slots[d.probeEmpty(s.addr)] = s
		}
	}
}

// alloc hands out the next LineInfo from the slab arena. Slabs have fixed
// capacity, so the returned pointer is never invalidated by later allocs.
func (d *Directory) alloc() *LineInfo {
	if len(d.arena) == cap(d.arena) {
		d.arena = make([]LineInfo, 0, dirSlabLines) //cohort:allow hotalloc: fresh slab once per dirSlabLines first touches
	}
	d.arena = append(d.arena, LineInfo{Owner: MemOwner}) //cohort:allow hotalloc: within slab capacity by the check above
	return &d.arena[len(d.arena)-1]
}

// Len returns the number of tracked lines.
func (d *Directory) Len() int { return d.n }

// ForEach visits every tracked line in ascending address order. The sort
// makes the visit order — and therefore any event the callback schedules —
// identical between runs; mode switches iterate the directory on the hot
// path, so this must never fall back to raw table order. Lines the callback
// creates are not visited (matching the previous snapshot semantics).
func (d *Directory) ForEach(fn func(lineAddr uint64, li *LineInfo)) {
	if !d.sorted {
		sort.Slice(d.addrs, func(i, j int) bool { return d.addrs[i] < d.addrs[j] })
		d.sorted = true
	}
	for _, la := range d.addrs {
		fn(la, d.Peek(la))
	}
}

// RequestKind converts a trace access kind into the waiter Write flag.
func RequestKind(k trace.Kind) bool { return k == trace.Write }
