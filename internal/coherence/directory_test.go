package coherence

import (
	"testing"

	"cohort/internal/trace"
)

func TestDirectoryFirstTouchMemOwned(t *testing.T) {
	d := NewDirectory()
	if d.Peek(5) != nil {
		t.Fatal("Peek created a line")
	}
	li := d.Get(5)
	if li.Owner != MemOwner {
		t.Fatalf("first touch owner = %d, want MemOwner", li.Owner)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.Get(5) != li {
		t.Fatal("Get not idempotent")
	}
}

func TestWaiterFIFO(t *testing.T) {
	li := &LineInfo{Owner: MemOwner}
	if li.PendingInv() {
		t.Fatal("empty line has PendingInv")
	}
	if li.HeadWaiter() != nil {
		t.Fatal("HeadWaiter on empty queue")
	}
	if err := li.Enqueue(Waiter{Core: 1, Write: true, Broadcast: 10}); err != nil {
		t.Fatal(err)
	}
	if err := li.Enqueue(Waiter{Core: 2, Broadcast: 20}); err != nil {
		t.Fatal(err)
	}
	if err := li.Enqueue(Waiter{Core: 1, Broadcast: 30}); err == nil {
		t.Fatal("duplicate core enqueue must fail")
	}
	if !li.PendingInv() {
		t.Fatal("PendingInv false with waiters")
	}
	if h := li.HeadWaiter(); h == nil || h.Core != 1 {
		t.Fatalf("head = %+v", h)
	}
	w := li.PopWaiter()
	if w.Core != 1 || !w.Write || w.Broadcast != 10 {
		t.Fatalf("pop = %+v", w)
	}
	if li.PopWaiter().Core != 2 {
		t.Fatal("FIFO order broken")
	}
	if li.PendingInv() {
		t.Fatal("drained queue still pending")
	}
}

func TestSharerBitmask(t *testing.T) {
	li := &LineInfo{Owner: MemOwner}
	li.AddSharer(0)
	li.AddSharer(3)
	li.AddSharer(63)
	if !li.IsSharer(0) || !li.IsSharer(3) || !li.IsSharer(63) || li.IsSharer(1) {
		t.Fatal("sharer bits wrong")
	}
	got := li.SharerList(64)
	want := []int{0, 3, 63}
	if len(got) != len(want) {
		t.Fatalf("SharerList = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SharerList = %v, want %v", got, want)
		}
	}
	li.RemoveSharer(3)
	if li.IsSharer(3) {
		t.Fatal("RemoveSharer failed")
	}
	// Removing an absent sharer is a no-op.
	li.RemoveSharer(7)
	if !li.IsSharer(0) || !li.IsSharer(63) {
		t.Fatal("RemoveSharer clobbered other bits")
	}
}

func TestForEach(t *testing.T) {
	d := NewDirectory()
	d.Get(1)
	d.Get(2)
	d.Get(3)
	n := 0
	d.ForEach(func(uint64, *LineInfo) { n++ })
	if n != 3 {
		t.Fatalf("ForEach visited %d, want 3", n)
	}
}

func TestRequestKind(t *testing.T) {
	if RequestKind(trace.Read) || !RequestKind(trace.Write) {
		t.Fatal("RequestKind mapping wrong")
	}
}
