// Package coherence implements the protocol mechanics of CoHoRT: the per-line
// countdown-counter circuit of Fig. 3 (cycle-accurate model plus the
// closed-form lazy equivalent the simulator uses), the Mode-Switch LUT of
// Fig. 2b, and the per-line ownership/waiter bookkeeping shared by all
// protocol variants.
//
// A single mechanism expresses both protocol families (paper §III-B): a core
// whose timer register holds θ ≥ 1 runs time-based coherence; θ = −1 disables
// the counter and reduces the behaviour to standard snooping MSI; θ = 0 makes
// the core serve pending requesters and invalidate immediately.
package coherence

import (
	"fmt"
	"math"
	"math/bits"

	"cohort/internal/config"
)

// MemOwner marks the shared memory (LLC) as the owner of a line.
const MemOwner = -1

// ReleaseTime returns the earliest cycle ≥ req at which a core that
// (re)fetched a line at cycle fetched, running with timer θ, hands the line
// to a remote requester whose request became visible at cycle req.
//
// For θ ≥ 1 the countdown counter expires at fetched+θ, fetched+2θ, …
// (replenishing whenever no remote requester waits); the line is released at
// the first expiry at or after the request. For θ = −1 (MSI) and θ = 0
// (no-cache) the line is released immediately.
// The result saturates at math.MaxInt64 instead of wrapping: callers compare
// release cycles with < and schedule events at them, so a wrapped (negative)
// release would silently disable the timer protection.
//
//cohort:hotpath
func ReleaseTime(fetched, req int64, theta config.Timer) int64 {
	if !theta.Timed() {
		return req
	}
	t := uint64(int64(theta))
	if req <= fetched {
		return satAdd(fetched, t)
	}
	// req − fetched can exceed MaxInt64 when fetched is far in the negative
	// range; two's-complement subtraction in uint64 is exact for req > fetched.
	d := uint64(req) - uint64(fetched)
	k := d / t // ceil((req-fetched)/θ), computed without the d+t-1 overflow
	if d%t != 0 {
		k++
	}
	hi, lo := bits.Mul64(k, t)
	if hi != 0 {
		return math.MaxInt64
	}
	return satAdd(fetched, lo)
}

// satAdd returns base + add saturated to math.MaxInt64.
func satAdd(base int64, add uint64) int64 {
	if base < 0 {
		nb := uint64(-(base + 1)) + 1 // −base without overflowing MinInt64
		if add < nb {
			return base + int64(add) // stays negative: cannot overflow
		}
		rest := add - nb
		if rest > math.MaxInt64 {
			return math.MaxInt64
		}
		return int64(rest)
	}
	if add > uint64(math.MaxInt64)-uint64(base) {
		return math.MaxInt64
	}
	return base + int64(add)
}

// CounterAction is the demultiplexer outcome of the Fig. 3 circuit for one
// cycle.
type CounterAction uint8

const (
	// ActionNone: the line stays put (counter still running, or MSI with no
	// pending remote request).
	ActionNone CounterAction = iota
	// ActionInvalidate: the line must be invalidated/handed over.
	ActionInvalidate
	// ActionReplenish: the counter expired with no pending remote request
	// and reloads θ.
	ActionReplenish
)

// String names the action.
func (a CounterAction) String() string {
	switch a {
	case ActionInvalidate:
		return "invalidate"
	case ActionReplenish:
		return "replenish"
	default:
		return "none"
	}
}

// CountdownCounter is a cycle-accurate model of the per-line circuit in
// Fig. 3: a 16-bit countdown counter with a Load input, an Enable signal
// derived from comparing the timer threshold register against the special
// value −1, and a demultiplexer steered by PendingInv.
//
// The simulator itself uses the closed-form ReleaseTime; this model exists to
// validate that the low-cost circuit realizes the same semantics (see the
// equivalence property test).
type CountdownCounter struct {
	theta config.Timer // timer threshold register
	count int32        // current Count output
}

// NewCountdownCounter returns a counter wired to the given threshold
// register value and loads it (the Load signal of a line fill).
func NewCountdownCounter(theta config.Timer) *CountdownCounter {
	if !theta.Valid() {
		panic(fmt.Sprintf("coherence: invalid timer %d", theta))
	}
	c := &CountdownCounter{theta: theta}
	c.Load()
	return c
}

// Load reloads the counter from the threshold register (line fill or
// replenish).
func (c *CountdownCounter) Load() {
	if c.theta.Timed() {
		c.count = int32(c.theta)
	} else {
		c.count = 0
	}
}

// Enable mirrors the comparator of Fig. 3: the counter decrements only when
// the threshold register is not −1.
func (c *CountdownCounter) Enable() bool { return c.theta != config.TimerMSI }

// Count exposes the current counter value.
func (c *CountdownCounter) Count() int32 { return c.count }

// Tick advances one clock cycle with the given PendingInv input and returns
// the resulting action. The caller invalidates the line or keeps it
// according to the action; on ActionReplenish the counter has already
// reloaded θ.
func (c *CountdownCounter) Tick(pendingInv bool) CounterAction {
	if !c.Enable() {
		// MSI: invalidate exactly when a remote requester waits.
		if pendingInv {
			return ActionInvalidate
		}
		return ActionNone
	}
	if c.theta == config.TimerNoCache {
		// θ = 0: never retain.
		return ActionInvalidate
	}
	if c.count > 0 {
		c.count--
	}
	if c.count > 0 {
		return ActionNone
	}
	if pendingInv {
		return ActionInvalidate
	}
	c.Load()
	return ActionReplenish
}

// ModeLUT is the Mode-Switch LUT of Fig. 2b: one 16-bit timer threshold per
// operating mode, indexed by the mode. For five criticality levels this is
// the 80-bit table the paper quotes.
type ModeLUT struct {
	entries []config.Timer
}

// NewModeLUT builds a LUT from per-mode timer values (index 0 = mode 1).
func NewModeLUT(entries []config.Timer) (*ModeLUT, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("coherence: empty mode LUT")
	}
	for m, th := range entries {
		if !th.Valid() {
			return nil, fmt.Errorf("coherence: mode %d timer %d invalid", m+1, th)
		}
	}
	return &ModeLUT{entries: append([]config.Timer(nil), entries...)}, nil
}

// Lookup returns θ for 1-based mode m.
func (l *ModeLUT) Lookup(mode int) (config.Timer, error) {
	if mode < 1 || mode > len(l.entries) {
		return 0, fmt.Errorf("coherence: mode %d out of range [1,%d]", mode, len(l.entries))
	}
	idx := mode - 1
	if TestHooks.LUTLookupOffByOne {
		idx = mode % len(l.entries) // seeded fault (mutation tests only)
	}
	return l.entries[idx], nil
}

// Modes returns the number of modes the LUT covers.
func (l *ModeLUT) Modes() int { return len(l.entries) }

// StorageBits returns the hardware cost of the LUT (16 bits per entry),
// matching the paper's 80-bit figure for five levels.
func (l *ModeLUT) StorageBits() int { return 16 * len(l.entries) }
