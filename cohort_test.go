// Facade tests: the public API exposed by package cohort must be sufficient
// to run the complete workflow a downstream user needs — generate a
// workload, configure platforms, simulate, analyze, optimize, and regenerate
// the paper's experiments — without touching internal packages.
package cohort_test

import (
	"bytes"
	"strings"
	"testing"

	"cohort"
)

func TestFacadeEndToEnd(t *testing.T) {
	p, err := cohort.ProfileByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	tr := p.Scaled(0.01).Generate(4, 64, 42)

	cfg, err := cohort.NewCoHoRT(4, 1, []cohort.Timer{300, 100, cohort.TimerMSI, cohort.TimerMSI})
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := cohort.Bounds(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := cohort.NewSystem(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	for i := range run.Cores {
		if bounds[i].WCMLBound != cohort.Unbounded && run.Cores[i].TotalLatency > bounds[i].WCMLBound {
			t.Fatalf("core %d: measured %d above bound %d", i, run.Cores[i].TotalLatency, bounds[i].WCMLBound)
		}
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	p, _ := cohort.ProfileByName("water")
	tr := p.Scaled(0.005).Generate(2, 64, 1)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := cohort.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalAccesses() != tr.TotalAccesses() {
		t.Fatalf("round trip lost accesses: %d != %d", got.TotalAccesses(), tr.TotalAccesses())
	}
	sum := cohort.SummarizeTrace(got, 64)
	if len(sum.PerCore) != 2 {
		t.Fatalf("summary cores = %d", len(sum.PerCore))
	}
}

func TestFacadeConfigJSON(t *testing.T) {
	cfg := cohort.NewPCC(4)
	data, err := cfg.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := cohort.ParseConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Transfer != cohort.TransferViaMemory {
		t.Fatal("config JSON round trip lost transfer policy")
	}
}

func TestFacadeOptimize(t *testing.T) {
	p, _ := cohort.ProfileByName("fft")
	tr := p.Scaled(0.01).Generate(4, 64, 5)
	base := cohort.PaperDefaults(4, 1)
	prob := &cohort.Problem{
		Lat:     base.Lat,
		L1:      base.L1,
		Streams: tr.Streams,
		Timed:   []bool{true, false, false, false},
	}
	gc := cohort.DefaultGA(1)
	gc.Pop, gc.Generations = 8, 4
	res, err := cohort.Optimize(prob, gc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Timers[0].Timed() || res.Timers[1] != cohort.TimerMSI {
		t.Fatalf("optimize structure wrong: %v", res.Timers)
	}
}

func TestFacadeTable1(t *testing.T) {
	if !strings.Contains(cohort.Table1().String(), "CoHoRT") {
		t.Fatal("Table1 missing CoHoRT row")
	}
}

func TestFacadeAnalysisHelpers(t *testing.T) {
	base := cohort.PaperDefaults(4, 1)
	timers := []cohort.Timer{100, cohort.TimerMSI, cohort.TimerMSI, cohort.TimerMSI}
	if w := cohort.WCLCoHoRT(base.Lat, timers, 1); w <= 0 {
		t.Fatalf("WCL = %d", w)
	}
	p, _ := cohort.ProfileByName("fft")
	s := p.Scaled(0.01).Generate(1, 64, 3).Streams[0]
	thIS, sat := cohort.SaturationTimer(s, base.L1, base.Lat)
	if thIS < 1 {
		t.Fatalf("θ_is = %d", thIS)
	}
	h, m := cohort.GuaranteedHits(s, base.L1, base.Lat, thIS, base.Lat.SlotWidth())
	if h < sat || h+m != int64(len(s)) {
		t.Fatalf("hits %d/%d at θ_is, saturation %d", h, m, sat)
	}
}

func TestFacadeHardwareCost(t *testing.T) {
	cfg := cohort.PaperDefaults(4, 5)
	rep, err := cohort.HardwareCost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerCore.ModeLUT != 80 {
		t.Fatalf("5-level LUT = %d bits, want 80", rep.PerCore.ModeLUT)
	}
	if ov := rep.Overhead(); ov < 0.03 || ov > 0.05 {
		t.Fatalf("overhead = %.4f, want ≈3-4%%", ov)
	}
}

func TestFacadeScheduling(t *testing.T) {
	p, _ := cohort.ProfileByName("fft")
	tr := p.Scaled(0.01).Generate(2, 64, 1)
	cfg, _ := cohort.NewCoHoRT(2, 1, []cohort.Timer{100, cohort.TimerMSI})
	bounds, err := cohort.Bounds(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	tasks := []cohort.Task{
		{Name: "a", Core: 0, Criticality: 1, Deadline: bounds[0].WCMLBound + 1},
		{Name: "b", Core: 1, Criticality: 1, Deadline: bounds[1].WCMLBound + 1},
	}
	vs, err := cohort.Admission(tasks, bounds, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !cohort.SetSchedulable(vs) {
		t.Fatal("slack deadlines must be schedulable")
	}
	mode, _, ok, err := cohort.LowestFeasibleMode(tasks, [][]cohort.CoreBound{bounds}, 1)
	if err != nil || !ok || mode != 1 {
		t.Fatalf("LowestFeasibleMode = %d/%v/%v", mode, ok, err)
	}
}

func TestFacadeGovernorAndVCD(t *testing.T) {
	p, _ := cohort.ProfileByName("radix")
	tr := p.Scaled(0.01).Generate(2, 64, 5)
	cfg := cohort.PaperDefaults(2, 2)
	cfg.Cores[0].Criticality = 2
	cfg.Cores[0].TimerLUT = []cohort.Timer{50, 50}
	cfg.Cores[1].TimerLUT = []cohort.Timer{800, cohort.TimerMSI}
	sys, err := cohort.NewSystem(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := cohort.NewVCDRecorder(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetTracer(rec); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetGovernor(cohort.Governor{Core: 0, Window: 2000, Budget: 500}); err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "$enddefinitions $end") {
		t.Fatal("VCD dump missing header")
	}
	if len(sys.GovernorHistory()) == 0 {
		t.Fatal("governor recorded no samples")
	}
	if run.Cores[0].Latency.Total() != run.Cores[0].Accesses {
		t.Fatal("latency histogram does not cover all accesses")
	}
}

func TestFacadeMESI(t *testing.T) {
	cfg := cohort.PaperDefaults(1, 1)
	cfg.Snoop = cohort.SnoopMESI
	tr := &cohort.Trace{Name: "t", Streams: []cohort.Stream{{
		{Addr: 0x1000, Kind: cohort.Read},
		{Addr: 0x1000, Kind: cohort.Write},
	}}}
	sys, err := cohort.NewSystem(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Cores[0].Upgrades != 0 || run.Cores[0].Misses != 1 {
		t.Fatalf("MESI silent upgrade failed: %+v", run.Cores[0])
	}
}
