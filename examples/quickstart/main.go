// Quickstart: simulate the paper's default platform (4 cores, 16 KiB
// direct-mapped L1s, shared bus with RROF arbitration, perfect LLC) running
// the fft workload under heterogeneous coherence — two time-based cores and
// two MSI cores — and compare the measured per-core memory latency against
// the analytical worst-case bounds.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cohort"
)

func main() {
	// 1. A deterministic multi-core workload shaped after SPLASH-2 fft.
	profile, err := cohort.ProfileByName("fft")
	if err != nil {
		log.Fatal(err)
	}
	tr := profile.Scaled(0.05).Generate(4, 64, 42)
	fmt.Printf("workload: %s, %d accesses over %d cores\n\n",
		tr.Name, tr.TotalAccesses(), tr.NumCores())

	// 2. A heterogeneous platform: cores 0-1 run time-based coherence with
	// timers of 300 and 100 cycles; cores 2-3 run plain snooping MSI
	// (θ = −1 disables the countdown counter, §III-B).
	cfg, err := cohort.NewCoHoRT(4, 1, []cohort.Timer{300, 100, cohort.TimerMSI, cohort.TimerMSI})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Analytical bounds (Eq. 1 per request, Eq. 2/3 per task).
	bounds, err := cohort.Bounds(cfg, tr)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Cycle-accurate simulation.
	sys, err := cohort.NewSystem(cfg, tr)
	if err != nil {
		log.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(run)
	fmt.Println("\nper-core totals (measured vs analytical bound):")
	for i := range run.Cores {
		c, b := run.Cores[i], bounds[i]
		fmt.Printf("  core %d (θ=%-8v): %6d cycles measured, bound %8d, %5.1f%% hits\n",
			i, b.Theta, c.TotalLatency, b.WCMLBound, 100*c.HitRate())
	}
}
