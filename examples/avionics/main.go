// Avionics scenario: the DO-178C standard defines five levels of assurance
// (paper §I) — the regime PENDULUM's two levels cannot certify. This example
// builds a five-level, five-core platform, derives per-mode timer
// configurations with the optimizer, uses the schedulability layer to pick
// the lowest feasible operating mode for a task set, and then lets the
// closed-loop governor enforce the most critical task's latency budget at
// run time. It closes with the hardware bill for the five-level Mode-Switch
// LUT (the paper's "negligible 80 bits").
//
// Run with: go run ./examples/avionics
package main

import (
	"fmt"
	"log"

	"cohort"
)

const levels = 5

func main() {
	// A five-core platform: criticality A (5, flight control) down to
	// E (1, telemetry).
	names := []string{"flight-ctrl", "engine-mon", "nav", "display", "telemetry"}
	profile, err := cohort.ProfileByName("cholesky")
	if err != nil {
		log.Fatal(err)
	}
	tr := profile.Scaled(0.04).Generate(levels, 64, 99)
	base := cohort.PaperDefaults(levels, levels)

	// Offline flow of Fig. 2a, once per mode: tasks with criticality ≥ mode
	// keep timers, the rest degrade to MSI.
	fmt.Println("per-mode timer configurations (optimization engine):")
	timersPerMode := make([][]cohort.Timer, levels)
	boundsPerMode := make([][]cohort.CoreBound, levels)
	for m := 1; m <= levels; m++ {
		timed := make([]bool, levels)
		for i := range timed {
			timed[i] = levels-i >= m // core i has criticality levels−i
		}
		prob := &cohort.Problem{
			Lat:     base.Lat,
			L1:      base.L1,
			Streams: tr.Streams,
			Timed:   timed,
		}
		gc := cohort.DefaultGA(uint64(m))
		gc.Pop, gc.Generations = 16, 10
		res, err := cohort.Optimize(prob, gc)
		if err != nil {
			log.Fatal(err)
		}
		timersPerMode[m-1] = res.Timers
		boundsPerMode[m-1] = res.Eval.PerCore
		fmt.Printf("  mode %d: Θ = %v\n", m, res.Timers)
	}

	// Task set: deadlines leave slack at deep modes but not at mode 1.
	tasks := make([]cohort.Task, levels)
	for i := range tasks {
		deadline := boundsPerMode[levels-1][i].WCMLBound * 2
		if deadline <= 0 { // degraded cores have Eq.3 bounds; keep positive
			deadline = 1 << 40
		}
		tasks[i] = cohort.Task{
			Name:        names[i],
			Core:        i,
			Criticality: levels - i,
			Deadline:    deadline,
		}
	}
	// Tighten the flight-control deadline so only a degraded mode fits.
	tasks[0].Deadline = boundsPerMode[levels-1][0].WCMLBound * 11 / 10

	mode, verdicts, ok, err := cohort.LowestFeasibleMode(tasks, boundsPerMode, 1)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatal("no feasible mode")
	}
	fmt.Printf("\nschedulability: lowest feasible mode = %d\n", mode)
	for _, v := range verdicts {
		state := "guaranteed"
		if v.Degraded {
			state = "degraded to MSI (still running)"
		}
		fmt.Printf("  %-12s (level %d): WCET bound %12d, deadline %12d — %s\n",
			v.Task.Name, v.Task.Criticality, v.WCET, v.Task.Deadline, state)
	}

	// Run the platform at mode 1 with the governor guarding flight-ctrl; it
	// escalates at run time when the observed latency budget is blown.
	cfg := cohort.PaperDefaults(levels, levels)
	for i := 0; i < levels; i++ {
		cfg.Cores[i].Criticality = levels - i
		lut := make([]cohort.Timer, levels)
		for m := 0; m < levels; m++ {
			lut[m] = timersPerMode[m][i]
		}
		cfg.Cores[i].TimerLUT = lut
	}
	sys, err := cohort.NewSystem(cfg, tr)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.SetGovernor(cohort.Governor{
		Core:    0,
		Window:  5_000,
		Budget:  3_000, // memory cycles per window for flight-ctrl
		MaxMode: mode,
	}); err != nil {
		log.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	escalations := 0
	for _, d := range sys.GovernorHistory() {
		if d.Escalated {
			escalations++
		}
	}
	fmt.Printf("\ngovernor run: %d samples, %d escalations, final mode %d; all tasks completed:\n",
		len(sys.GovernorHistory()), escalations, sys.Mode())
	for i := range run.Cores {
		fmt.Printf("  %-12s %6d/%d accesses, %5.1f%% hits\n",
			names[i], run.Cores[i].Accesses, tr.Lambda(i), 100*run.Cores[i].HitRate())
	}

	cost, err := cohort.HardwareCost(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", cost)
	fmt.Printf("(the five-level Mode-Switch LUT costs %d bits per core — the paper's \"negligible 80 bits\")\n",
		cost.PerCore.ModeLUT)
}
