// Requirement-aware optimization (paper §V, Fig. 2a): sweep each core's
// saturation timer θ_is, then run the genetic algorithm twice — once
// unconstrained and once with a WCML requirement Γ on core 1 — and show how
// the constraint reshapes the chosen timer vector.
//
// Run with: go run ./examples/optimizer
package main

import (
	"fmt"
	"log"

	"cohort"
)

func main() {
	profile, err := cohort.ProfileByName("lu")
	if err != nil {
		log.Fatal(err)
	}
	tr := profile.Scaled(0.05).Generate(4, 64, 21)
	base := cohort.PaperDefaults(4, 1)

	// θ_is per core: the timer beyond which guaranteed hits saturate — the
	// upper bound of the optimizer's search space.
	fmt.Println("saturation sweep (θ_is per core):")
	for i, s := range tr.Streams {
		thIS, satHits := cohort.SaturationTimer(s, base.L1, base.Lat)
		fmt.Printf("  core %d: θ_is = %5v, %d of %d accesses guaranteed at saturation\n",
			i, thIS, satHits, len(s))
	}

	prob := &cohort.Problem{
		Lat:     base.Lat,
		L1:      base.L1,
		Streams: tr.Streams,
		Timed:   []bool{true, true, true, true},
	}
	gc := cohort.DefaultGA(3)

	unconstrained, err := cohort.Optimize(prob, gc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunconstrained optimum: Θ = %v, objective %.1f cycles/request\n",
		unconstrained.Timers, unconstrained.Eval.Objective)

	// Tighten core 1: require its WCML bound to drop 25% below the
	// unconstrained value (constraint C1).
	gamma := unconstrained.Eval.PerCore[1].WCMLBound * 3 / 4
	prob.Gamma = []int64{0, gamma, 0, 0}
	constrained, err := cohort.Optimize(prob, gc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with Γ_1 = %d:        Θ = %v, objective %.1f, feasible %v\n",
		gamma, constrained.Timers, constrained.Eval.Objective, constrained.Eval.Feasible())
	fmt.Printf("  core 1 bound: %d -> %d (requirement %d)\n",
		unconstrained.Eval.PerCore[1].WCMLBound,
		constrained.Eval.PerCore[1].WCMLBound, gamma)
	fmt.Println(`
The constrained run trades co-runner timers (which inflate core 1's Eq. 1
latency) for core 1's requirement — the essence of requirement-aware
configuration: the architecture adapts to the task set instead of serving
every core identically.`)
}
