// Heterogeneous coherence in action: the same shared-data workload runs
// three times — all cores on snooping MSI, all cores time-based, and the
// heterogeneous mix CoHoRT enables — to expose the trade-off of Fig. 1:
// time-based coherence protects the owner's streaming hits at the price of
// remote-request latency; MSI serves remote requests immediately at the
// price of the owner's locality. Heterogeneity lets each core pick its side.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"cohort"
)

func main() {
	profile, err := cohort.ProfileByName("radix") // write-heavy, high sharing
	if err != nil {
		log.Fatal(err)
	}
	tr := profile.Scaled(0.05).Generate(4, 64, 7)

	configs := []struct {
		name   string
		timers []cohort.Timer
	}{
		{"all MSI     ", []cohort.Timer{cohort.TimerMSI, cohort.TimerMSI, cohort.TimerMSI, cohort.TimerMSI}},
		{"all timed   ", []cohort.Timer{200, 200, 200, 200}},
		{"heterogeneous", []cohort.Timer{200, 200, cohort.TimerMSI, cohort.TimerMSI}},
	}

	fmt.Printf("workload %s: %d accesses, 4 cores\n\n", tr.Name, tr.TotalAccesses())
	fmt.Printf("%-14s %10s %12s %14s %16s\n", "platform", "makespan", "total hits", "c0 max miss", "c0 WCML bound")
	for _, c := range configs {
		cfg, err := cohort.NewCoHoRT(4, 1, c.timers)
		if err != nil {
			log.Fatal(err)
		}
		bounds, err := cohort.Bounds(cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := cohort.NewSystem(cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		run, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		var hits int64
		for i := range run.Cores {
			hits += run.Cores[i].Hits
		}
		fmt.Printf("%-14s %10d %12d %14d %16d\n",
			c.name, run.Cycles, hits, run.Cores[0].MaxMissLatency, bounds[0].WCMLBound)
	}

	fmt.Println(`
Reading the table: the all-timed platform maximizes hits but every core's
worst-case bound carries three co-runner timers; all-MSI minimizes the
per-request latency but loses the hit guarantees entirely (Eq. 3 prices
every access as a miss). The heterogeneous mix keeps the timers where the
locality pays for them and MSI where responsiveness matters — the
configuration space the optimization engine (see examples/optimizer)
searches automatically.`)
}
