// Mode switching (paper §VI, Fig. 7): a four-level mixed-criticality system
// reacts to a tightening requirement on its most critical core by degrading
// lower-criticality cores to MSI through the per-core Mode-Switch LUT —
// at run time, by re-programming one timer register per core — instead of
// suspending them.
//
// Run with: go run ./examples/modeswitch
package main

import (
	"fmt"
	"log"

	"cohort"
)

func main() {
	profile, err := cohort.ProfileByName("fft")
	if err != nil {
		log.Fatal(err)
	}
	tr := profile.Scaled(0.05).Generate(4, 64, 42)

	// Table II of the paper: θ_i^m per mode. Mode m degrades every core
	// with criticality < m to MSI.
	lut := [][]cohort.Timer{
		{300, 20, 20, 20},
		{300, 20, 20, cohort.TimerMSI},
		{300, 10, cohort.TimerMSI, cohort.TimerMSI},
		{500, cohort.TimerMSI, cohort.TimerMSI, cohort.TimerMSI},
	}
	levels := len(lut)

	cfg := cohort.PaperDefaults(4, levels)
	for i := 0; i < 4; i++ {
		cfg.Cores[i].Criticality = 4 - i // c0 most critical
		timers := make([]cohort.Timer, levels)
		for m := 0; m < levels; m++ {
			timers[m] = lut[m][i]
		}
		cfg.Cores[i].TimerLUT = timers
	}

	// c0's analytical WCML bound at each mode: fewer timed co-runners mean
	// a smaller Eq. 1 term, so the bound shrinks as the mode deepens.
	fmt.Println("c0 WCML bound per mode:")
	base := cohort.PaperDefaults(4, 1)
	for m := 1; m <= levels; m++ {
		wcl := cohort.WCLCoHoRT(base.Lat, lut[m-1], 0)
		mh, mm := cohort.GuaranteedHits(tr.Streams[0], base.L1, base.Lat, lut[m-1][0], base.Lat.SlotWidth())
		bound := mh*base.Lat.Hit + mm*wcl
		fmt.Printf("  mode %d: WCL %5d, guaranteed hits %4d -> bound %8d cycles\n", m, wcl, mh, bound)
	}

	// Run the adaptive system: switch to mode 3 about a third of the way through the run and
	// to mode 4 at about two thirds (an external monitor tightening c0's budget).
	sys, err := cohort.NewSystem(cfg, tr)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.ScheduleModeSwitch(10_000, 3); err != nil {
		log.Fatal(err)
	}
	if err := sys.ScheduleModeSwitch(20_000, 4); err != nil {
		log.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nadaptive run: %d mode switches applied, final mode %d\n",
		run.ModeSwitches, sys.Mode())
	fmt.Println("every core completed its task — lower-criticality cores were degraded to MSI, not suspended:")
	for i := range run.Cores {
		fmt.Printf("  core %d (criticality %d): %d/%d accesses completed, %5.1f%% hits\n",
			i, cfg.Cores[i].Criticality, run.Cores[i].Accesses, tr.Lambda(i), 100*run.Cores[i].HitRate())
	}
}
