package cohort_test

import (
	"fmt"

	"cohort"
)

// ExampleNewSystem runs the paper's platform on a tiny hand-written workload
// and prints the per-core hit/miss split.
func ExampleNewSystem() {
	tr := &cohort.Trace{
		Name: "demo",
		Streams: []cohort.Stream{
			{
				{Addr: 0x1000, Kind: cohort.Write},
				{Addr: 0x1000, Kind: cohort.Read},
				{Addr: 0x1000, Kind: cohort.Read},
			},
			{
				{Addr: 0x1000, Kind: cohort.Write, Gap: 500},
			},
		},
	}
	cfg, err := cohort.NewCoHoRT(2, 1, []cohort.Timer{100, cohort.TimerMSI})
	if err != nil {
		panic(err)
	}
	sys, err := cohort.NewSystem(cfg, tr)
	if err != nil {
		panic(err)
	}
	run, err := sys.Run()
	if err != nil {
		panic(err)
	}
	for i := range run.Cores {
		fmt.Printf("core %d: %d hits, %d misses\n", i, run.Cores[i].Hits, run.Cores[i].Misses)
	}
	// Output:
	// core 0: 2 hits, 1 misses
	// core 1: 0 hits, 1 misses
}

// ExampleWCLCoHoRT evaluates the per-request bound of Equation 1 (plus the
// work-conserving correction) for the paper's platform.
func ExampleWCLCoHoRT() {
	lat := cohort.PaperDefaults(4, 1).Lat
	timers := []cohort.Timer{300, 20, 20, 20}
	fmt.Println(cohort.WCLCoHoRT(lat, timers, 0))
	// Output:
	// 600
}

// ExampleGuaranteedHits classifies a short stream with the in-isolation
// cache analysis: the first access fills, the rest hit within the θ window.
func ExampleGuaranteedHits() {
	base := cohort.PaperDefaults(1, 1)
	s := cohort.Stream{
		{Addr: 0x40, Kind: cohort.Read},
		{Addr: 0x40, Kind: cohort.Read},
		{Addr: 0x40, Kind: cohort.Read, Gap: 500}, // outside a θ=100 window
	}
	hits, misses := cohort.GuaranteedHits(s, base.L1, base.Lat, 100, base.Lat.SlotWidth())
	fmt.Println(hits, misses)
	// Output:
	// 1 2
}

// ExampleOptimize runs the requirement-aware timer optimizer on a generated
// workload and reports feasibility.
func ExampleOptimize() {
	profile, _ := cohort.ProfileByName("fft")
	tr := profile.Scaled(0.01).Generate(2, 64, 42)
	base := cohort.PaperDefaults(2, 1)
	prob := &cohort.Problem{
		Lat:     base.Lat,
		L1:      base.L1,
		Streams: tr.Streams,
		Timed:   []bool{true, false},
	}
	gc := cohort.DefaultGA(1)
	gc.Pop, gc.Generations = 8, 4
	res, err := cohort.Optimize(prob, gc)
	if err != nil {
		panic(err)
	}
	fmt.Println("feasible:", res.Eval.Feasible(), "- core 1 stays MSI:", res.Timers[1] == cohort.TimerMSI)
	// Output:
	// feasible: true - core 1 stays MSI: true
}

// ExampleHardwareCost prints the paper's hardware bill for a five-level
// platform.
func ExampleHardwareCost() {
	cfg := cohort.PaperDefaults(4, 5)
	rep, err := cohort.HardwareCost(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mode LUT: %d bits, overhead: %.1f%%\n", rep.PerCore.ModeLUT, 100*rep.Overhead())
	// Output:
	// mode LUT: 80 bits, overhead: 3.6%
}
