package cohort_test

import (
	"testing"

	"cohort"
)

// TestAllocationCeiling pins the simulation kernel's allocation count: one
// full system construction plus run must stay under a ceiling set just above
// the measured count (~317 allocs for this workload, dominated by
// one-time setup — trace copies, cache arrays, event-queue backing). The
// pre-overhaul kernel took ~38,000 allocs on the same workload, so the guard
// trips long before boxing or per-event closures creep back into the hot
// path.
func TestAllocationCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector inflates allocation counts")
	}
	p, err := cohort.ProfileByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	tr := p.Scaled(0.1).Generate(4, 64, 42)
	cfg, err := cohort.NewCoHoRT(4, 1, []cohort.Timer{300, 100, 50, cohort.TimerMSI})
	if err != nil {
		t.Fatal(err)
	}
	const ceiling = 400
	allocs := testing.AllocsPerRun(10, func() {
		sys, err := cohort.NewSystem(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > ceiling {
		t.Fatalf("simulation allocated %.0f times per run, ceiling %d — a hot path regressed to per-event allocation", allocs, ceiling)
	}
	t.Logf("allocs per construct+run: %.0f (ceiling %d)", allocs, ceiling)
}
