#!/bin/sh
# check.sh runs the same gate as CI (.github/workflows/ci.yml) locally:
# build, go vet, the determinism lint suite, the test suite, and the
# race-detector pass over the simulator packages.
set -eu
cd "$(dirname "$0")"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> cohort-vet -baseline lint.baseline ./..."
go run ./cmd/cohort-vet -baseline lint.baseline ./...

echo "==> cohort-vet concurrency analyzers (report artifact)"
go run ./cmd/cohort-vet -only lockorder,atomicmix,goleak,ctxflow,syncmisuse \
  -baseline lint.baseline -json /tmp/concurrency-report.json ./...

echo "==> seeded concurrency mutants (each analyzer must fail closed)"
go test -run TestConcurrencyMutants ./internal/lint

echo "==> go test -shuffle=on ./..."
go test -shuffle=on ./...

echo "==> go test -race -shuffle=on ./internal/..."
go test -race -shuffle=on ./internal/...

echo "==> go test -race (parallel evaluation engine)"
go test -race -shuffle=on ./internal/parallel ./internal/opt ./internal/experiments

echo "==> cohort-bench fig5a -j 8 smoke"
go run ./cmd/cohort-bench -run fig5a -j 8 -scale 0.01 -cap 800 -benches fft,water -pop 8 -gens 6 >/dev/null

echo "==> batched-vs-scalar and curve-vs-scalar fuzz seeds (committed corpus)"
go test -run 'FuzzBatchVsScalar|FuzzCurveVsScalar' ./internal/analysis

echo "==> coverage gate (internal/sim + internal/opt + internal/analysis combined, post-PR10 floor 96.5%)"
covdir="$(mktemp -d)"
go test -coverprofile "$covdir/cover.out" ./internal/sim ./internal/opt ./internal/analysis >/dev/null
go tool cover -func "$covdir/cover.out" | awk '
  /^total:/ {
    sub(/%/, "", $3)
    printf "    combined coverage: %s%%\n", $3
    if ($3 + 0 < 96.5) { print "    FAIL: below 96.5% floor"; exit 1 }
  }'
rm -rf "$covdir"

echo "==> observability smoke (manifest + report gate: scalar, batched and curve oracle)"
obsdir="$(mktemp -d)"
trap 'rm -rf "$obsdir"' EXIT
go run ./cmd/cohort-bench -run fig5a -j 1 -curve=false -scale 0.01 -cap 800 -benches fft,water -pop 8 -gens 6 -out-dir "$obsdir" >/dev/null 2>&1
go run ./cmd/cohort-bench -run fig5a -j 8 -curve=false -scale 0.01 -cap 800 -benches fft,water -pop 8 -gens 6 -out-dir "$obsdir" >/dev/null 2>&1
# The batched-oracle and curve-oracle (default) runs land in the same
# directory under the same config key, so -check and the fingerprint diff
# below gate batched ≡ curve ≡ scalar on the full CLI path, not just in unit
# tests.
go run ./cmd/cohort-bench -run fig5a -j 1 -curve=false -batch 16 -scale 0.01 -cap 800 -benches fft,water -pop 8 -gens 6 -out-dir "$obsdir" >/dev/null 2>&1
go run ./cmd/cohort-bench -run fig5a -j 1 -scale 0.01 -cap 800 -benches fft,water -pop 8 -gens 6 -out-dir "$obsdir" >/dev/null 2>&1
go run ./cmd/cohort-report -dir "$obsdir" -check >/dev/null

echo "==> perf smoke (bit-identical fingerprints vs pre-overhaul goldens)"
go run ./cmd/cohort-report -dir "$obsdir" -fingerprints > "$obsdir/fingerprints.txt"
diff cmd/cohort-report/testdata/perf-smoke.fingerprints "$obsdir/fingerprints.txt"

echo "==> live debug-server smoke (/healthz, /metrics, /runs, pprof mid-run)"
go build -o "$obsdir/cohort-bench" ./cmd/cohort-bench
"$obsdir/cohort-bench" -run fig5a,attribution -j 2 -scale 1 -cap 0 -pop 24 -gens 24 \
  -listen 127.0.0.1:8723 >/dev/null &
benchpid=$!
up=0
i=0
while [ "$i" -lt 100 ]; do
  if curl -fsS http://127.0.0.1:8723/healthz 2>/dev/null | grep -q ok; then up=1; break; fi
  i=$((i + 1)); sleep 0.1
done
if [ "$up" != 1 ]; then
  echo "    FAIL: debug server never answered /healthz"
  kill "$benchpid" 2>/dev/null || true
  exit 1
fi
curl -fsS http://127.0.0.1:8723/metrics > "$obsdir/metrics.prom"
grep -q '^cohort_run_events_total' "$obsdir/metrics.prom"
curl -fsS http://127.0.0.1:8723/runs > "$obsdir/runs.json"
grep -q '"tool": "cohort-bench"' "$obsdir/runs.json"
curl -fsS "http://127.0.0.1:8723/debug/pprof/goroutine?debug=1" > "$obsdir/goroutine.pprof"
test -s "$obsdir/goroutine.pprof"
wait "$benchpid"

echo "==> cohort-model -smoke (exhaustive closure at depth 4)"
go run ./cmd/cohort-model -smoke -depth 4 -q -out "$obsdir/counterexample.txt"

echo "==> all checks passed"
