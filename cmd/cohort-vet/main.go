// Command cohort-vet runs the CoHoRT determinism lint suite (internal/lint)
// over the simulator packages. The analyzers enforce the contract that makes
// every simulation bit-reproducible: no map-order dependence, no wall-clock
// reads, no global randomness, no concurrency inside event callbacks, and no
// floating-point leakage into cycle arithmetic. Two further analyzers guard
// the protocol and the suppressions themselves: exhaustive requires switches
// over protocol enums to cover every member (or declare a default), and
// allowdoc requires every //cohort:allow annotation to use the canonical
// '//cohort:allow <analyzer>: <reason>' form with a registered analyzer.
//
// Usage:
//
//	go run ./cmd/cohort-vet [packages]
//
// Packages default to ./... and accept any `go list` pattern. Only the
// packages bound by the determinism contract (internal/{sim,core,bus,cache,
// coherence,memctrl,sched,trace,opt}) are checked; everything else matched by
// the pattern is skipped, so `./...` is always a valid invocation. Exit
// status is 1 when any diagnostic is reported.
package main

import (
	"flag"
	"fmt"
	"os"

	"cohort/internal/lint"
)

// contractPackages is the set of import paths bound by the determinism
// contract. Reporting/CLI packages (stats, experiments, vcd, cmd/*) may
// legitimately read the clock or format floats; simulator state may not.
var contractPackages = map[string]bool{
	"cohort/internal/sim":       true,
	"cohort/internal/core":      true,
	"cohort/internal/bus":       true,
	"cohort/internal/cache":     true,
	"cohort/internal/coherence": true,
	"cohort/internal/memctrl":   true,
	"cohort/internal/sched":     true,
	"cohort/internal/trace":     true,
	"cohort/internal/opt":       true,
	"cohort/internal/invariant": true, // runs inside the simulator hot path
	"cohort/internal/model":     true, // exhaustive exploration must be reproducible
	// The observability layer feeds deterministic snapshots and traces; its
	// sole sanctioned wall-clock read (obs.WallClock.Now, manifests only)
	// carries a //cohort:allow annotation.
	"cohort/internal/obs": true,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cohort-vet [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the determinism lint suite over the simulator packages.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	checked, failed := 0, 0
	for _, pkg := range pkgs {
		if !contractPackages[pkg.Path] {
			continue
		}
		checked++
		for _, a := range analyzers {
			diags, err := lint.Run(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			for _, d := range diags {
				failed++
				fmt.Printf("%s: %s [%s]\n", pkg.Fset.Position(d.Pos), d.Message, a.Name)
			}
		}
	}
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "cohort-vet: no contract packages matched %v\n", patterns)
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "cohort-vet: %d violation(s) across %d package(s)\n", failed, checked)
		os.Exit(1)
	}
	fmt.Printf("cohort-vet: ok (%d packages, %d analyzers)\n", checked, len(analyzers))
}
