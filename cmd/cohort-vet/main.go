// Command cohort-vet runs the CoHoRT determinism lint suite (internal/lint)
// over the simulator packages. The analyzers enforce the contract that makes
// every simulation bit-reproducible: no map-order dependence, no wall-clock
// reads, no global randomness, no concurrency inside event callbacks, and no
// floating-point leakage into cycle arithmetic. Two analyzers guard the
// protocol and the suppressions themselves: exhaustive requires switches over
// protocol enums to cover every member (or declare a default), and allowdoc
// requires every //cohort:allow annotation to use the canonical
// '//cohort:allow <analyzer>: <reason>' form with a registered analyzer.
//
// Eight whole-program analyzers run over a conservative call graph of the
// entire module rather than file by file. Three guard the hot path: hotalloc
// (no allocation sites reachable from //cohort:hotpath roots), reachcontract
// (the determinism contracts enforced transitively from hot-path and oracle
// roots) and parallelpure (jobs handed to parallel.Map/MapErr may write only
// their index-addressed result slot). Five guard the concurrency contracts:
// lockorder (no cycles in the global mutex-acquisition order graph), atomicmix
// (a variable touched through sync/atomic is never accessed plainly), goleak
// (every go statement has a visible join or cancel path), ctxflow (blocking
// operations reachable from a //cohort:server root accept a context.Context)
// and syncmisuse (copied locks, WaitGroup.Add inside the goroutine, double
// unlock, cross-goroutine channel close without //cohort:chanowner).
//
// Usage:
//
//	go run ./cmd/cohort-vet [flags] [packages]
//
// Packages default to ./... and accept any `go list` pattern. The per-package
// analyzers check only the packages bound by the determinism contract
// (internal/{sim,core,bus,cache,coherence,memctrl,sched,trace,opt,invariant,
// model,obs}); the whole-program analyzers see every matched package, so a
// helper in a cold package that reaches the kernel is still caught. Exit
// status is 1 when any unbaselined diagnostic is reported.
//
// Flags:
//
//	-baseline file   compare findings against a committed baseline: findings
//	                 listed there pass, new findings fail, stale entries fail
//	                 until pruned (the ratchet only shrinks)
//	-write-baseline  regenerate the -baseline file from the current findings
//	-json file       write the findings as a JSON report ("-" for stdout)
//	-only names      run only the named analyzers (comma-separated); CI uses
//	                 this to emit a concurrency-only report artifact
//	-graph           dump the conservative call graph and exit
//	-list            list the analyzers and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cohort/internal/lint"
)

// contractPackages is the set of import paths bound by the determinism
// contract for the per-package analyzers. Reporting/CLI packages (stats,
// experiments, vcd, cmd/*) may legitimately read the clock or format floats;
// simulator state may not. The whole-program analyzers are not limited by
// this set: reachability decides.
var contractPackages = map[string]bool{
	"cohort/internal/sim":       true,
	"cohort/internal/core":      true,
	"cohort/internal/bus":       true,
	"cohort/internal/cache":     true,
	"cohort/internal/coherence": true,
	"cohort/internal/memctrl":   true,
	"cohort/internal/sched":     true,
	"cohort/internal/trace":     true,
	"cohort/internal/opt":       true,
	"cohort/internal/invariant": true, // runs inside the simulator hot path
	"cohort/internal/model":     true, // exhaustive exploration must be reproducible
	// The observability layer feeds deterministic snapshots and traces; its
	// sole sanctioned wall-clock read (obs.WallClock.Now, manifests only)
	// carries a //cohort:allow annotation.
	"cohort/internal/obs": true,
}

// report is the schema of the -json output.
type report struct {
	Packages  int            `json:"packages"`
	Analyzers []string       `json:"analyzers"`
	Findings  []lint.Finding `json:"findings"`
	Baseline  *baselineInfo  `json:"baseline,omitempty"`
}

type baselineInfo struct {
	File     string   `json:"file"`
	Accepted int      `json:"accepted"`
	Fresh    int      `json:"fresh"`
	Stale    []string `json:"stale,omitempty"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	baselinePath := flag.String("baseline", "", "baseline `file` of accepted findings (ratcheted: new findings fail)")
	writeBaseline := flag.Bool("write-baseline", false, "regenerate the -baseline file from current findings")
	jsonOut := flag.String("json", "", "write findings as a JSON report to `file` (\"-\" for stdout)")
	only := flag.String("only", "", "run only these `analyzers` (comma-separated names)")
	graph := flag.Bool("graph", false, "dump the conservative whole-program call graph and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cohort-vet [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the determinism lint suite over the simulator packages.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *only != "" {
		wanted := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(name)] = true
		}
		var selected []*lint.Analyzer
		for _, a := range analyzers {
			if wanted[a.Name] {
				selected = append(selected, a)
				delete(wanted, a.Name)
			}
		}
		if len(wanted) > 0 {
			var unknown []string
			for name := range wanted {
				unknown = append(unknown, name)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "cohort-vet: -only names unknown analyzer(s) %v (see -list)\n", unknown)
			os.Exit(2)
		}
		analyzers = selected
	}
	if *list {
		for _, a := range analyzers {
			kind := "package"
			if a.RunProgram != nil {
				kind = "program"
			}
			fmt.Printf("%-16s [%s] %s\n", a.Name, kind, a.Doc)
		}
		return
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "cohort-vet: -write-baseline requires -baseline <file>")
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := lint.LoadProgram(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cg, err := lint.BuildGraph(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *graph {
		cg.Dump(os.Stdout)
		return
	}

	cwd, _ := os.Getwd()
	var findings []lint.Finding
	collect := func(a *lint.Analyzer, diags []lint.Diagnostic) {
		for _, d := range diags {
			pos := prog.Fset.Position(d.Pos)
			findings = append(findings, lint.RelFinding(a.Name, pos.Filename, pos.Line, pos.Column, d.Message, cwd))
		}
	}

	checked := 0
	for _, pkg := range prog.Pkgs {
		if !contractPackages[pkg.Path] {
			continue
		}
		checked++
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			diags, err := lint.Run(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			collect(a, diags)
		}
	}
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "cohort-vet: no contract packages matched %v\n", patterns)
		os.Exit(2)
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		diags, err := lint.RunOnProgram(a, prog, cg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		collect(a, diags)
	}

	rep := report{Packages: len(prog.Pkgs)}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, a.Name)
	}
	rep.Findings = findings

	if *writeBaseline {
		if err := os.WriteFile(*baselinePath, lint.FormatBaseline(findings), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cohort-vet:", err)
			os.Exit(2)
		}
		fmt.Printf("cohort-vet: wrote %s (%d finding(s))\n", *baselinePath, len(findings))
		return
	}

	failed := 0
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cohort-vet:", err)
			os.Exit(2)
		}
		accepted, err := lint.ParseBaseline(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fresh, stale := lint.DiffBaseline(findings, accepted)
		rep.Baseline = &baselineInfo{File: *baselinePath, Accepted: len(accepted), Fresh: len(fresh), Stale: stale}
		for _, f := range fresh {
			failed++
			fmt.Printf("%s\n", f)
		}
		for _, k := range stale {
			failed++
			fmt.Printf("stale baseline entry (finding no longer fires — prune with -write-baseline): %q\n", k)
		}
	} else {
		for _, f := range findings {
			failed++
			fmt.Printf("%s\n", f)
		}
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "cohort-vet:", err)
			os.Exit(2)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cohort-vet:", err)
			os.Exit(2)
		}
	}

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "cohort-vet: %d violation(s) across %d package(s)\n", failed, len(prog.Pkgs))
		os.Exit(1)
	}
	fmt.Printf("cohort-vet: ok (%d packages, %d contract packages, %d analyzers)\n",
		len(prog.Pkgs), checked, len(analyzers))
}
