// Command cohort-report merges the run manifests written by cohort-bench,
// cohort-opt and cohort-sim (-out-dir) into comparison reports. Manifests
// sharing a (tool, config key) pair describe the same computation — usually
// at different worker counts — so the report groups them, compares their
// wall times, and cross-checks that their metrics snapshots are
// byte-identical (the determinism contract made auditable after the fact).
//
// Usage:
//
//	cohort-report -dir results/
//	cohort-report -dir results/ -md > report.md
//	cohort-report -dir results/ -json
//	cohort-report -dir results/ -check
//	cohort-report -dir results/ -bench-out BENCH_baseline.json
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"cohort/internal/obs"
	"cohort/internal/stats"
)

// TrajectorySchema identifies the perf-trajectory document format appended
// to by -bench-out (the BENCH_*.json files tracked in the repository).
const TrajectorySchema = "cohort/bench-trajectory/v1"

// ReportSchema identifies the merged-report JSON format (-json).
const ReportSchema = "cohort/report/v1"

// Group is one (tool, config key) equivalence class of manifests.
type Group struct {
	Tool      string   `json:"tool"`
	ConfigKey string   `json:"config_key"`
	Runs      []RunRow `json:"runs"`
	// MetricsAgree reports whether every run in the group carries a
	// byte-identical metrics snapshot — the determinism contract.
	MetricsAgree bool `json:"metrics_agree"`
	// Attribution is the group's WCML latency decomposition when the runs
	// recorded one (cohort-bench -run attribution). Attribution is derived
	// from deterministic simulation results, so the first manifest's rows
	// stand for the whole group.
	Attribution []obs.AttributionRow `json:"attribution,omitempty"`
}

// RunRow summarizes one manifest.
type RunRow struct {
	Workers     int                `json:"workers"`
	OracleBatch int                `json:"oracle_batch,omitempty"`
	Curve       bool               `json:"curve,omitempty"`
	Seed        int64              `json:"seed"`
	StartedAt   string             `json:"started_at"`
	WallSeconds float64            `json:"wall_seconds"`
	Engine      *stats.EngineStats `json:"engine,omitempty"`
	Metrics     int                `json:"metrics"`
}

// Report is the merged view of one manifest directory.
type Report struct {
	Schema string  `json:"schema"`
	Groups []Group `json:"groups"`
}

// TrajectoryEntry is one appended perf point: what ran and how long it took.
// NumCPU/GoMaxProcs record the host's parallel capacity (optional, absent in
// entries written before the fields existed) so that wall times are
// self-explaining — e.g. workers=8 slower than workers=1 on a 1-CPU host.
type TrajectoryEntry struct {
	Tool        string             `json:"tool"`
	ConfigKey   string             `json:"config_key"`
	Workers     int                `json:"workers"`
	OracleBatch int                `json:"oracle_batch,omitempty"`
	Curve       bool               `json:"curve,omitempty"`
	NumCPU      int                `json:"num_cpu,omitempty"`
	GoMaxProcs  int                `json:"gomaxprocs,omitempty"`
	StartedAt   string             `json:"started_at"`
	WallSeconds float64            `json:"wall_seconds"`
	Engine      *stats.EngineStats `json:"engine,omitempty"`
}

// Trajectory is the append-only wall-time record (BENCH_*.json).
type Trajectory struct {
	Schema  string            `json:"schema"`
	Entries []TrajectoryEntry `json:"entries"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cohort-report:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cohort-report", flag.ContinueOnError)
	var (
		dir      = fs.String("dir", "", "directory of *.manifest.json files (required)")
		md       = fs.Bool("md", false, "emit a markdown report")
		asJSON   = fs.Bool("json", false, "emit the merged report as JSON instead of tables")
		check    = fs.Bool("check", false, "strict mode for CI: require at least one manifest and fail on any determinism mismatch")
		benchOut = fs.String("bench-out", "", "append every run's wall time to this perf-trajectory JSON file")
		fpOnly   = fs.Bool("fingerprints", false, "emit one 'tool config_key metrics_sha256' line per group and nothing else (for golden comparison in CI)")
		speedup  = fs.String("speedup", "", "compare two perf-trajectory files 'BASE.json,NEW.json': per (tool, config key) group, the best wall time in each and the speedup")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *speedup != "" {
		return runSpeedup(*speedup, stdout, *md)
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}

	ms, err := obs.LoadDir(*dir)
	if err != nil {
		return err
	}
	if *check && len(ms) == 0 {
		return fmt.Errorf("%s holds no manifests", *dir)
	}

	rep := merge(ms)

	if *fpOnly {
		// One line per (tool, config key) group: the config fingerprint plus a
		// hash of the canonical metrics snapshot. A perf rewrite must leave
		// these bytes unchanged — CI diffs the output against a golden file.
		for _, g := range rep.Groups {
			if !g.MetricsAgree {
				return fmt.Errorf("fingerprints: %s runs with config %s disagree on metrics",
					g.Tool, obs.ShortKey(g.ConfigKey))
			}
		}
		for _, g := range rep.Groups {
			sum := sha256.Sum256(metricsJSONFor(ms, g.Tool, g.ConfigKey))
			fmt.Fprintf(stdout, "%s %s %s\n", g.Tool, g.ConfigKey, hex.EncodeToString(sum[:]))
		}
		return nil
	}

	if *asJSON {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(b))
	} else {
		render(stdout, rep, *md)
	}

	if *benchOut != "" {
		if err := appendTrajectory(*benchOut, ms); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cohort-report: appended %d run(s) to %s\n", len(ms), *benchOut)
	}

	if *check {
		for _, g := range rep.Groups {
			if !g.MetricsAgree {
				return fmt.Errorf("determinism violation: %s runs with config %s disagree on metrics",
					g.Tool, obs.ShortKey(g.ConfigKey))
			}
		}
	}
	return nil
}

// metricsJSONFor returns the canonical metrics snapshot bytes of the first
// manifest in the (tool, key) group; -fingerprints has already established
// that every member of the group agrees byte-for-byte.
func metricsJSONFor(ms []*obs.Manifest, tool, key string) []byte {
	for _, m := range ms {
		if m.Tool == tool && m.ConfigKey == key {
			return m.Metrics.JSON()
		}
	}
	return nil
}

// merge groups the manifests by (tool, config key) and cross-checks each
// group's metrics snapshots.
func merge(ms []*obs.Manifest) *Report {
	byKey := map[string][]*obs.Manifest{}
	var order []string
	for _, m := range ms {
		id := m.Tool + "\x00" + m.ConfigKey
		if _, seen := byKey[id]; !seen {
			order = append(order, id)
		}
		byKey[id] = append(byKey[id], m)
	}
	sort.Strings(order)

	rep := &Report{Schema: ReportSchema}
	for _, id := range order {
		group := byKey[id]
		sort.Slice(group, func(i, j int) bool {
			if group[i].Workers != group[j].Workers {
				return group[i].Workers < group[j].Workers
			}
			return group[i].StartedAt < group[j].StartedAt
		})
		g := Group{
			Tool:         group[0].Tool,
			ConfigKey:    group[0].ConfigKey,
			MetricsAgree: true,
			Attribution:  group[0].Attribution,
		}
		want := group[0].Metrics.JSON()
		for _, m := range group {
			if !bytes.Equal(m.Metrics.JSON(), want) {
				g.MetricsAgree = false
			}
			g.Runs = append(g.Runs, RunRow{
				Workers:     m.Workers,
				OracleBatch: m.OracleBatch,
				Curve:       m.Curve,
				Seed:        m.Seed,
				StartedAt:   m.StartedAt,
				WallSeconds: m.WallSeconds,
				Engine:      m.Engine,
				Metrics:     len(m.Metrics),
			})
		}
		rep.Groups = append(rep.Groups, g)
	}
	return rep
}

// render lays the report out as one table per group plus a verdict line.
func render(w io.Writer, rep *Report, md bool) {
	if len(rep.Groups) == 0 {
		fmt.Fprintln(w, "no manifests found")
		return
	}
	for _, g := range rep.Groups {
		t := stats.NewTable(
			fmt.Sprintf("%s @ %s", g.Tool, obs.ShortKey(g.ConfigKey)),
			"workers", "batch", "curve", "seed", "started", "wall s", "engine jobs", "hits", "misses", "metrics")
		for _, r := range g.Runs {
			jobs, hits, misses := "-", "-", "-"
			if r.Engine != nil {
				jobs = fmt.Sprintf("%d", r.Engine.Jobs)
				hits = fmt.Sprintf("%d", r.Engine.CacheHits)
				misses = fmt.Sprintf("%d", r.Engine.CacheMisses)
			}
			batch := "-" // scalar oracle
			if r.OracleBatch > 1 {
				batch = fmt.Sprintf("%d", r.OracleBatch)
			}
			curve := "-"
			if r.Curve {
				curve = "yes"
			}
			t.AddRow(fmt.Sprintf("%d", r.Workers), batch, curve, fmt.Sprintf("%d", r.Seed), r.StartedAt,
				fmt.Sprintf("%.2f", r.WallSeconds), jobs, hits, misses, fmt.Sprintf("%d", r.Metrics))
		}
		if md {
			fmt.Fprintln(w, t.Markdown())
		} else {
			fmt.Fprintln(w, t.String())
		}
		verdict := "metrics agree across runs"
		if !g.MetricsAgree {
			verdict = "METRICS DISAGREE — determinism contract violated"
		}
		fmt.Fprintf(w, "%s\n\n", verdict)

		if len(g.Attribution) > 0 {
			at := stats.NewTable(
				fmt.Sprintf("%s @ %s — WCML attribution (cycles, share of total)", g.Tool, obs.ShortKey(g.ConfigKey)),
				"bench", "system", "core", "crit", "total", "hit", "arb", "timer", "xfer", "dram",
				"arb%", "timer%", "xfer%", "dram%")
			for _, r := range g.Attribution {
				crit := "nCr"
				if r.Critical {
					crit = "Cr"
				}
				at.AddRow(r.Benchmark, r.System, fmt.Sprintf("c%d", r.Core), crit,
					fmt.Sprintf("%d", r.TotalLatency), fmt.Sprintf("%d", r.HitCycles),
					fmt.Sprintf("%d", r.Arbitration), fmt.Sprintf("%d", r.TimerStall),
					fmt.Sprintf("%d", r.Transfer), fmt.Sprintf("%d", r.DRAM),
					pct(r.Arbitration, r.TotalLatency), pct(r.TimerStall, r.TotalLatency),
					pct(r.Transfer, r.TotalLatency), pct(r.DRAM, r.TotalLatency))
			}
			if md {
				fmt.Fprintln(w, at.Markdown())
			} else {
				fmt.Fprintln(w, at.String())
			}
			fmt.Fprintln(w)
		}
	}
}

// pct renders a latency component as its percentage of the total.
func pct(part, total int64) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}

// appendTrajectory appends one entry per manifest to the perf-trajectory
// file, creating it when absent. Exact duplicates (same tool, key, workers,
// oracle batch, start time) are dropped so re-running the report is
// idempotent.
func appendTrajectory(path string, ms []*obs.Manifest) error {
	traj := &Trajectory{Schema: TrajectorySchema}
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, traj); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		if traj.Schema != TrajectorySchema {
			return fmt.Errorf("%s: schema %q, want %q", path, traj.Schema, TrajectorySchema)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	seen := map[string]bool{}
	for _, e := range traj.Entries {
		seen[trajID(e)] = true
	}
	for _, m := range ms {
		e := TrajectoryEntry{
			Tool:        m.Tool,
			ConfigKey:   m.ConfigKey,
			Workers:     m.Workers,
			OracleBatch: m.OracleBatch,
			Curve:       m.Curve,
			StartedAt:   m.StartedAt,
			WallSeconds: m.WallSeconds,
			Engine:      m.Engine,
		}
		if m.Host != nil {
			e.NumCPU = m.Host.NumCPU
			e.GoMaxProcs = m.Host.GoMaxProcs
		}
		if seen[trajID(e)] {
			continue
		}
		seen[trajID(e)] = true
		traj.Entries = append(traj.Entries, e)
	}
	sort.Slice(traj.Entries, func(i, j int) bool {
		a, b := traj.Entries[i], traj.Entries[j]
		if a.StartedAt != b.StartedAt {
			return a.StartedAt < b.StartedAt
		}
		if a.Tool != b.Tool {
			return a.Tool < b.Tool
		}
		if a.ConfigKey != b.ConfigKey {
			return a.ConfigKey < b.ConfigKey
		}
		return a.Workers < b.Workers
	})
	b, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// loadTrajectory reads and schema-checks one perf-trajectory file.
func loadTrajectory(path string) (*Trajectory, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	traj := &Trajectory{}
	if err := json.Unmarshal(b, traj); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if traj.Schema != TrajectorySchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, traj.Schema, TrajectorySchema)
	}
	return traj, nil
}

// runSpeedup renders the wall-time ratio between two perf-trajectory files:
// entries are grouped by (tool, config key), each group is reduced to its
// best (minimum) wall time per file — the trajectory holds runs at several
// worker counts and oracle settings, and the best run is what a perf change
// is judged by — and matching groups get a base/new speedup column. Groups
// present in only one file render with '-' so a config drift is visible
// rather than silently dropped.
func runSpeedup(arg string, w io.Writer, md bool) error {
	paths := strings.Split(arg, ",")
	if len(paths) != 2 {
		return fmt.Errorf("-speedup wants exactly two files 'BASE.json,NEW.json', got %d", len(paths))
	}
	base, err := loadTrajectory(strings.TrimSpace(paths[0]))
	if err != nil {
		return err
	}
	next, err := loadTrajectory(strings.TrimSpace(paths[1]))
	if err != nil {
		return err
	}
	best := func(t *Trajectory) (map[string]float64, []string) {
		m := map[string]float64{}
		var order []string
		for _, e := range t.Entries {
			id := e.Tool + "\x00" + e.ConfigKey
			if v, ok := m[id]; !ok || e.WallSeconds < v {
				if !ok {
					order = append(order, id)
				}
				m[id] = e.WallSeconds
			}
		}
		return m, order
	}
	baseBest, order := best(base)
	nextBest, nextOrder := best(next)
	for _, id := range nextOrder {
		if _, ok := baseBest[id]; !ok {
			order = append(order, id)
		}
	}
	if len(order) == 0 {
		return fmt.Errorf("-speedup: no entries in either trajectory")
	}
	t := stats.NewTable(
		fmt.Sprintf("speedup: %s -> %s (best wall time per config)", paths[0], paths[1]),
		"tool", "config", "base s", "new s", "speedup")
	for _, id := range order {
		tool, key, _ := strings.Cut(id, "\x00")
		baseS, newS, ratio := "-", "-", "-"
		b, okB := baseBest[id]
		n, okN := nextBest[id]
		if okB {
			baseS = fmt.Sprintf("%.2f", b)
		}
		if okN {
			newS = fmt.Sprintf("%.2f", n)
		}
		if okB && okN && n > 0 {
			ratio = fmt.Sprintf("%.2fx", b/n)
		}
		t.AddRow(tool, obs.ShortKey(key), baseS, newS, ratio)
	}
	if md {
		fmt.Fprintln(w, t.Markdown())
	} else {
		fmt.Fprintln(w, t.String())
	}
	return nil
}

func trajID(e TrajectoryEntry) string {
	return fmt.Sprintf("%s\x00%s\x00%d\x00%d\x00%v\x00%s", e.Tool, e.ConfigKey, e.Workers, e.OracleBatch, e.Curve, e.StartedAt)
}
