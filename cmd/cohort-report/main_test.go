package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cohort/internal/obs"
	"cohort/internal/stats"
)

var key = strings.Repeat("ab", 32)

// writeManifest drops a minimal valid manifest into dir.
func writeManifest(t *testing.T, dir string, workers int, metrics obs.Snapshot) {
	t.Helper()
	clk := obs.ManualClock{T: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
	m := obs.NewManifest("cohort-bench", clk)
	m.ConfigKey = key
	m.Seed = 42
	m.Workers = workers
	m.Engine = &stats.EngineStats{Jobs: 10, CacheHits: 4, CacheMisses: 6}
	m.Metrics = metrics
	if _, err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
}

func snap(v int64) obs.Snapshot {
	return obs.Snapshot{{Name: "experiments_cells_total", Kind: obs.KindCounter, Value: v}}
}

func TestReportGroupsAndPasses(t *testing.T) {
	dir := t.TempDir()
	writeManifest(t, dir, 1, snap(8))
	writeManifest(t, dir, 8, snap(8))

	var out bytes.Buffer
	if err := run([]string{"-dir", dir, "-check"}, &out); err != nil {
		t.Fatalf("check on agreeing manifests failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "metrics agree across runs") {
		t.Errorf("missing verdict:\n%s", out.String())
	}
	if !strings.Contains(out.String(), obs.ShortKey(key)) {
		t.Errorf("missing group key:\n%s", out.String())
	}
}

func TestReportDetectsDeterminismViolation(t *testing.T) {
	dir := t.TempDir()
	writeManifest(t, dir, 1, snap(8))
	writeManifest(t, dir, 8, snap(9)) // diverging metric value

	var out bytes.Buffer
	if err := run([]string{"-dir", dir}, &out); err != nil {
		t.Fatalf("non-strict run must not fail: %v", err)
	}
	if !strings.Contains(out.String(), "METRICS DISAGREE") {
		t.Errorf("missing violation verdict:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"-dir", dir, "-check"}, &out); err == nil {
		t.Fatal("-check must fail on diverging metrics")
	}
}

func TestReportCheckRequiresManifests(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dir", t.TempDir(), "-check"}, &out); err == nil {
		t.Fatal("-check on an empty directory must fail")
	}
	out.Reset()
	if err := run([]string{"-dir", t.TempDir()}, &out); err != nil {
		t.Fatalf("non-strict empty directory must render, not fail: %v", err)
	}
	if !strings.Contains(out.String(), "no manifests") {
		t.Errorf("missing empty notice:\n%s", out.String())
	}
}

func TestReportJSONOutput(t *testing.T) {
	dir := t.TempDir()
	writeManifest(t, dir, 1, snap(8))
	var out bytes.Buffer
	if err := run([]string{"-dir", dir, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Schema != ReportSchema || len(rep.Groups) != 1 || !rep.Groups[0].MetricsAgree {
		t.Errorf("unexpected report: %+v", rep)
	}
}

func TestTrajectoryAppendIdempotent(t *testing.T) {
	dir := t.TempDir()
	writeManifest(t, dir, 1, snap(8))
	writeManifest(t, dir, 8, snap(8))
	traj := filepath.Join(t.TempDir(), "BENCH_test.json")

	var out bytes.Buffer
	for i := 0; i < 2; i++ { // second pass must dedup, not double
		if err := run([]string{"-dir", dir, "-bench-out", traj}, &out); err != nil {
			t.Fatal(err)
		}
	}
	b, err := os.ReadFile(traj)
	if err != nil {
		t.Fatal(err)
	}
	var tr Trajectory
	if err := json.Unmarshal(b, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Schema != TrajectorySchema {
		t.Errorf("schema = %q", tr.Schema)
	}
	if len(tr.Entries) != 2 {
		t.Errorf("expected 2 deduped entries, got %d: %+v", len(tr.Entries), tr.Entries)
	}
	if tr.Entries[0].Workers != 1 || tr.Entries[1].Workers != 8 {
		t.Errorf("entries out of order: %+v", tr.Entries)
	}
}
