package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cohort/internal/obs"
	"cohort/internal/stats"
)

var key = strings.Repeat("ab", 32)

// writeManifest drops a minimal valid manifest into dir.
func writeManifest(t *testing.T, dir string, workers int, metrics obs.Snapshot) {
	t.Helper()
	clk := obs.ManualClock{T: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
	m := obs.NewManifest("cohort-bench", clk)
	m.ConfigKey = key
	m.Seed = 42
	m.Workers = workers
	m.Engine = &stats.EngineStats{Jobs: 10, CacheHits: 4, CacheMisses: 6}
	m.Metrics = metrics
	if _, err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
}

func snap(v int64) obs.Snapshot {
	return obs.Snapshot{{Name: "experiments_cells_total", Kind: obs.KindCounter, Value: v}}
}

func TestReportGroupsAndPasses(t *testing.T) {
	dir := t.TempDir()
	writeManifest(t, dir, 1, snap(8))
	writeManifest(t, dir, 8, snap(8))

	var out bytes.Buffer
	if err := run([]string{"-dir", dir, "-check"}, &out); err != nil {
		t.Fatalf("check on agreeing manifests failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "metrics agree across runs") {
		t.Errorf("missing verdict:\n%s", out.String())
	}
	if !strings.Contains(out.String(), obs.ShortKey(key)) {
		t.Errorf("missing group key:\n%s", out.String())
	}
}

func TestReportDetectsDeterminismViolation(t *testing.T) {
	dir := t.TempDir()
	writeManifest(t, dir, 1, snap(8))
	writeManifest(t, dir, 8, snap(9)) // diverging metric value

	var out bytes.Buffer
	if err := run([]string{"-dir", dir}, &out); err != nil {
		t.Fatalf("non-strict run must not fail: %v", err)
	}
	if !strings.Contains(out.String(), "METRICS DISAGREE") {
		t.Errorf("missing violation verdict:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"-dir", dir, "-check"}, &out); err == nil {
		t.Fatal("-check must fail on diverging metrics")
	}
}

func TestReportCheckRequiresManifests(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dir", t.TempDir(), "-check"}, &out); err == nil {
		t.Fatal("-check on an empty directory must fail")
	}
	out.Reset()
	if err := run([]string{"-dir", t.TempDir()}, &out); err != nil {
		t.Fatalf("non-strict empty directory must render, not fail: %v", err)
	}
	if !strings.Contains(out.String(), "no manifests") {
		t.Errorf("missing empty notice:\n%s", out.String())
	}
}

func TestReportJSONOutput(t *testing.T) {
	dir := t.TempDir()
	writeManifest(t, dir, 1, snap(8))
	var out bytes.Buffer
	if err := run([]string{"-dir", dir, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Schema != ReportSchema || len(rep.Groups) != 1 || !rep.Groups[0].MetricsAgree {
		t.Errorf("unexpected report: %+v", rep)
	}
}

func TestTrajectoryAppendIdempotent(t *testing.T) {
	dir := t.TempDir()
	writeManifest(t, dir, 1, snap(8))
	writeManifest(t, dir, 8, snap(8))
	traj := filepath.Join(t.TempDir(), "BENCH_test.json")

	var out bytes.Buffer
	for i := 0; i < 2; i++ { // second pass must dedup, not double
		if err := run([]string{"-dir", dir, "-bench-out", traj}, &out); err != nil {
			t.Fatal(err)
		}
	}
	b, err := os.ReadFile(traj)
	if err != nil {
		t.Fatal(err)
	}
	var tr Trajectory
	if err := json.Unmarshal(b, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Schema != TrajectorySchema {
		t.Errorf("schema = %q", tr.Schema)
	}
	if len(tr.Entries) != 2 {
		t.Errorf("expected 2 deduped entries, got %d: %+v", len(tr.Entries), tr.Entries)
	}
	if tr.Entries[0].Workers != 1 || tr.Entries[1].Workers != 8 {
		t.Errorf("entries out of order: %+v", tr.Entries)
	}
}

func TestReportRendersAttribution(t *testing.T) {
	dir := t.TempDir()
	clk := obs.ManualClock{T: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
	m := obs.NewManifest("cohort-bench", clk)
	m.ConfigKey = key
	m.Seed = 42
	m.Workers = 1
	m.Metrics = snap(8)
	for _, sys := range []string{"CoHoRT", "PCC", "PENDULUM"} {
		m.Attribution = append(m.Attribution, obs.AttributionRow{
			Benchmark: "fft", System: sys, Core: 0, Critical: true, Misses: 10,
			Arbitration: 100, TimerStall: 50, Transfer: 200, DRAM: 400,
			HitCycles: 250, TotalLatency: 1000,
		})
	}
	if _, err := m.Write(dir); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-dir", dir}, &out); err != nil {
		t.Fatalf("report failed: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"WCML attribution", "CoHoRT", "PCC", "PENDULUM", "40.0%", "5.0%"} {
		if !strings.Contains(got, want) {
			t.Errorf("report output missing %q:\n%s", want, got)
		}
	}
}

// TestReportAttributionInJSON checks the rows survive the -json path.
func TestReportAttributionInJSON(t *testing.T) {
	dir := t.TempDir()
	clk := obs.ManualClock{T: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
	m := obs.NewManifest("cohort-bench", clk)
	m.ConfigKey = key
	m.Seed = 42
	m.Workers = 1
	m.Metrics = snap(8)
	m.Attribution = []obs.AttributionRow{{
		Benchmark: "fft", System: "CoHoRT", Core: 1, Critical: false, Misses: 3,
		Arbitration: 1, TimerStall: 2, Transfer: 3, DRAM: 4, HitCycles: 5, TotalLatency: 15,
	}}
	if _, err := m.Write(dir); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-dir", dir, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 1 || len(rep.Groups[0].Attribution) != 1 {
		t.Fatalf("attribution rows lost in JSON report: %+v", rep.Groups)
	}
	if got := rep.Groups[0].Attribution[0].TimerStall; got != 2 {
		t.Errorf("TimerStall = %d, want 2", got)
	}
}

// TestReportCurveRuns pins the curve-oracle plumbing: a manifest written by a
// -curve run renders with the curve column set and carries the flag into the
// perf trajectory.
func TestReportCurveRuns(t *testing.T) {
	dir := t.TempDir()
	clk := obs.ManualClock{T: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
	m := obs.NewManifest("cohort-bench", clk)
	m.ConfigKey = key
	m.Seed = 42
	m.Workers = 1
	m.Curve = true
	m.Metrics = snap(8)
	if _, err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
	traj := filepath.Join(t.TempDir(), "BENCH_curve.json")
	var out bytes.Buffer
	if err := run([]string{"-dir", dir, "-bench-out", traj}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "yes") {
		t.Errorf("curve run not marked in the report:\n%s", out.String())
	}
	b, err := os.ReadFile(traj)
	if err != nil {
		t.Fatal(err)
	}
	var tr Trajectory
	if err := json.Unmarshal(b, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 1 || !tr.Entries[0].Curve {
		t.Errorf("trajectory lost the curve flag: %+v", tr.Entries)
	}
}

// writeTrajectory drops a trajectory file with one entry per (key, wall) pair.
func writeTrajectory(t *testing.T, path string, entries []TrajectoryEntry) {
	t.Helper()
	b, err := json.Marshal(&Trajectory{Schema: TrajectorySchema, Entries: entries})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupComparesTrajectories(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "BENCH_base.json")
	newPath := filepath.Join(dir, "BENCH_new.json")
	key2 := strings.Repeat("cd", 32)
	writeTrajectory(t, basePath, []TrajectoryEntry{
		// Two base runs of the shared config: the slower one must not dilute
		// the ratio — speedup compares best against best.
		{Tool: "cohort-bench", ConfigKey: key, Workers: 1, StartedAt: "2026-01-01T00:00:00Z", WallSeconds: 12},
		{Tool: "cohort-bench", ConfigKey: key, Workers: 8, StartedAt: "2026-01-01T00:01:00Z", WallSeconds: 10},
		{Tool: "cohort-bench", ConfigKey: key2, Workers: 1, StartedAt: "2026-01-01T00:02:00Z", WallSeconds: 3},
	})
	writeTrajectory(t, newPath, []TrajectoryEntry{
		{Tool: "cohort-bench", ConfigKey: key, Workers: 1, Curve: true, StartedAt: "2026-02-01T00:00:00Z", WallSeconds: 2},
	})
	var out bytes.Buffer
	if err := run([]string{"-speedup", basePath + "," + newPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "5.00x") {
		t.Errorf("expected 5.00x speedup (best 10 -> 2):\n%s", out.String())
	}
	// key2 exists only in the base file: rendered, with no ratio.
	if !strings.Contains(out.String(), obs.ShortKey(key2)) {
		t.Errorf("base-only config dropped from the comparison:\n%s", out.String())
	}
}

func TestSpeedupRejectsBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-speedup", "only-one.json"}, &out); err == nil {
		t.Fatal("-speedup with one file must fail")
	}
	if err := run([]string{"-speedup", "a.json,b.json,c.json"}, &out); err == nil {
		t.Fatal("-speedup with three files must fail")
	}
	missing := filepath.Join(t.TempDir(), "nope.json")
	if err := run([]string{"-speedup", missing + "," + missing}, &out); err == nil {
		t.Fatal("-speedup with missing files must fail")
	}
}
