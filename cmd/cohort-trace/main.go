// Command cohort-trace generates and inspects the synthetic SPLASH-2-shaped
// workload traces that drive the simulator.
//
// Usage:
//
//	cohort-trace -bench fft -cores 4 -scale 0.05 -seed 42 -out fft.trace
//	cohort-trace -bench ocean -summary
//	cohort-trace -list
package main

import (
	"flag"
	"fmt"
	"os"

	"cohort"
)

func main() {
	var (
		bench   = flag.String("bench", "fft", "benchmark profile name")
		cores   = flag.Int("cores", 4, "number of cores")
		scale   = flag.Float64("scale", 0.05, "access-count scale factor (1.0 = paper-sized)")
		seed    = flag.Uint64("seed", 42, "generator seed")
		line    = flag.Int("line", 64, "cache line size in bytes")
		out     = flag.String("out", "", "write the trace to this file ('-' or empty = stdout unless -summary)")
		summary = flag.Bool("summary", false, "print per-core statistics instead of the trace")
		binform = flag.Bool("binary", false, "write the compact binary format instead of text")
		list    = flag.Bool("list", false, "list available benchmark profiles")
	)
	flag.Parse()

	if *list {
		for _, p := range cohort.Profiles() {
			fmt.Printf("%-10s %8d accesses/core  shared %4d lines  %2.0f%% writes\n",
				p.Name, p.AccessesPerCore, p.SharedLines, 100*p.PWrite)
		}
		return
	}

	p, err := cohort.ProfileByName(*bench)
	if err != nil {
		fatal(err)
	}
	tr := p.Scaled(*scale).Generate(*cores, *line, *seed)

	if *summary {
		fmt.Print(cohort.SummarizeTrace(tr, *line))
		return
	}
	w := os.Stdout
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	writeFn := tr.Write
	if *binform {
		writeFn = tr.WriteBinary
	}
	if err := writeFn(w); err != nil {
		fatal(err)
	}
	if w != os.Stdout {
		fmt.Fprintf(os.Stderr, "wrote %d accesses (%d cores) to %s\n", tr.TotalAccesses(), tr.NumCores(), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cohort-trace:", err)
	os.Exit(1)
}
