// Command cohort-model exhaustively model-checks the CoHoRT protocol: it
// enumerates every quiescent state reachable within a bounded number of
// event windows on a small configuration, replaying each candidate schedule
// through the real simulator with invariant checking enabled. A violation is
// reported as a minimized counterexample script, written to -out, replayable
// with -replay and renderable as a Perfetto trace with -chrome.
//
// Usage:
//
//	cohort-model -smoke                          # the CI tier (2 cores, 1 line, 2 modes)
//	cohort-model -smoke -depth 3                 # deeper exploration
//	cohort-model -smoke -mutate timer-release-skew -out cex.txt
//	cohort-model -replay cex.txt -chrome cex.json
//
// Exit status: 0 when exploration (or replay) finds no violation, 1 when a
// violation is found, 2 on usage or internal errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cohort/internal/config"
	"cohort/internal/model"
)

func main() {
	var (
		smoke      = flag.Bool("smoke", false, "explore the smoke configuration (2 cores, 1 line, 2 modes, θ ∈ {−1,0,2,5})")
		configFile = flag.String("config", "", "explore a platform from this config JSON file instead of -smoke")
		lines      = flag.String("lines", "0x1000", "comma-separated byte addresses of the lines to exercise (with -config)")
		depth      = flag.Int("depth", 2, "exploration depth in windows")
		gaps       = flag.String("gaps", "", "override post-quiescence gap menu (comma-separated cycles)")
		offsets    = flag.String("offsets", "", "override intra-window race offset menu (comma-separated cycles)")
		noPairs    = flag.Bool("no-pairs", false, "disable two-command race windows (faster, shallower)")
		noSym      = flag.Bool("no-symmetry", false, "disable symmetry reduction over identical cores")
		maxStates  = flag.Int64("max-states", 0, "truncate after this many distinct states (0 = exhaustive)")
		spillDir   = flag.String("spill-dir", "", "visited-set spill directory (default: temp)")
		spillAt    = flag.Int("spill-threshold", 0, "in-memory visited keys before spilling to disk (default 1M)")
		mutate     = flag.String("mutate", "", "arm a seeded protocol fault: "+strings.Join(model.MutationNames(), " | "))
		out        = flag.String("out", "counterexample.txt", "write the minimized counterexample script here on violation")
		replayFile = flag.String("replay", "", "replay a counterexample script instead of exploring")
		chrome     = flag.String("chrome", "", "with -replay: write a Perfetto/Chrome trace of the replay here")
		quiet      = flag.Bool("q", false, "suppress per-level progress")
	)
	flag.Parse()

	if *mutate != "" {
		if err := model.ApplyMutation(*mutate); err != nil {
			fatal(err)
		}
	}

	if *replayFile != "" {
		replay(*replayFile, *chrome)
		return
	}

	var mcfg model.Config
	switch {
	case *smoke && *configFile != "":
		fatal(fmt.Errorf("-smoke and -config are mutually exclusive"))
	case *smoke:
		mcfg = model.Smoke(*depth)
	case *configFile != "":
		raw, err := os.ReadFile(*configFile)
		if err != nil {
			fatal(err)
		}
		sys, err := config.ParseJSON(raw)
		if err != nil {
			fatal(err)
		}
		addrs, err := parseU64List(*lines)
		if err != nil {
			fatal(err)
		}
		mcfg = model.Config{Sys: sys, Lines: addrs, Depth: *depth, Pairs: true, Symmetry: true}
	default:
		fmt.Fprintln(os.Stderr, "cohort-model: need -smoke, -config or -replay")
		flag.Usage()
		os.Exit(2)
	}
	if *gaps != "" {
		v, err := parseI64List(*gaps)
		if err != nil {
			fatal(err)
		}
		mcfg.PostGaps = v
	}
	if *offsets != "" {
		v, err := parseI64List(*offsets)
		if err != nil {
			fatal(err)
		}
		mcfg.RaceOffsets = v
	}
	if *noPairs {
		mcfg.Pairs = false
	}
	if *noSym {
		mcfg.Symmetry = false
	}
	mcfg.Depth = *depth
	mcfg.MaxStates = *maxStates
	mcfg.SpillDir = *spillDir
	mcfg.SpillThreshold = *spillAt
	if !*quiet {
		mcfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	c, err := model.New(mcfg)
	if err != nil {
		fatal(err)
	}
	res, err := c.Explore()
	if err != nil {
		fatal(err)
	}
	exhaustive := "exhaustive"
	if res.Truncated {
		exhaustive = "TRUNCATED"
	}
	fmt.Printf("cohort-model: %d states, %d runs, depth %d (%s), %d spills\n",
		res.States, res.Runs, res.Depth, exhaustive, res.Spills)
	if res.Violation == nil {
		fmt.Println("cohort-model: no violations")
		return
	}
	v := res.Violation
	fmt.Printf("cohort-model: VIOLATION [%s]\n  %s\n  script:    %s\n  minimized: %s\n",
		v.Kind, v.Err, model.Describe(v.Script), model.Describe(v.Minimized))
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := model.WriteScript(f, c.Sys(), c.Lines(), v.Minimized); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("cohort-model: counterexample written to %s (replay with -replay %s)\n", *out, *out)
	os.Exit(1)
}

// replay re-executes a counterexample script through a checker rebuilt from
// the script's embedded configuration.
func replay(path, chrome string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	sys, lines, script, err := model.ParseScript(f)
	if err != nil {
		fatal(err)
	}
	c, err := model.New(model.Config{Sys: sys, Lines: lines, Pairs: true})
	if err != nil {
		fatal(err)
	}
	var out *model.ReplayOutcome
	if chrome != "" {
		cf, err := os.Create(chrome)
		if err != nil {
			fatal(err)
		}
		out, err = c.ReplayChrome(script, cf)
		if err != nil {
			fatal(err)
		}
		if err := cf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("cohort-model: chrome trace written to %s (load at ui.perfetto.dev)\n", chrome)
	} else {
		out, err = c.Replay(script)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("cohort-model: replayed %s\n", model.Describe(script))
	if out.Violation == nil {
		fmt.Println("cohort-model: replay clean (no violation)")
		return
	}
	fmt.Printf("cohort-model: VIOLATION [%s]\n  %s\n", out.Violation.Kind, out.Violation.Err)
	os.Exit(1)
}

func parseU64List(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad address %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseI64List(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad cycle count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cohort-model:", err)
	os.Exit(2)
}
