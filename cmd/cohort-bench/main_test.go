package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cohort/internal/experiments"
)

// update regenerates the golden files: go test ./cmd/cohort-bench -update
var update = flag.Bool("update", false, "rewrite golden files")

// quickArgs keeps the golden runs at test sizing (two benchmarks, small GA).
func quickArgs(extra ...string) []string {
	args := []string{
		"-scale", "0.01", "-cap", "800", "-benches", "fft,water",
		"-pop", "8", "-gens", "6",
	}
	return append(args, extra...)
}

// TestGolden locks the rendered text tables at the byte level: a
// parallelization regression that reorders rows or cells shows up as a
// golden-file diff. Each experiment is rendered twice — serial (-j 1) and
// parallel (-j 8) — and both must match the golden byte for byte.
func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"table1", []string{"-run", "table1"}},
		{"fig5a", quickArgs("-run", "fig5a")},
		{"fig6a", quickArgs("-run", "fig6a")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			experiments.ResetMemo()
			var serial bytes.Buffer
			if err := run(append(tc.args, "-j", "1"), &serial); err != nil {
				t.Fatalf("run -j 1: %v", err)
			}
			experiments.ResetMemo()
			var par bytes.Buffer
			if err := run(append(tc.args, "-j", "8"), &par); err != nil {
				t.Fatalf("run -j 8: %v", err)
			}
			if !bytes.Equal(serial.Bytes(), par.Bytes()) {
				t.Fatalf("-j 1 and -j 8 output differ:\n--- j1 ---\n%s\n--- j8 ---\n%s", serial.Bytes(), par.Bytes())
			}

			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, serial.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(serial.Bytes(), want) {
				t.Errorf("output differs from %s (re-run with -update if the change is intended):\n--- got ---\n%s\n--- want ---\n%s",
					golden, serial.Bytes(), want)
			}
		})
	}
}

// TestRunRejectsUnknownExperiment covers the CLI's selector validation.
func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "fig9z"}, &out); err == nil {
		t.Fatal("expected an error for an unknown experiment name")
	}
}
