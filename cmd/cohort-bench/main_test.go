package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cohort/internal/experiments"
	"cohort/internal/obs"
)

// testClock is the fixed clock injected into every test run: manifests must
// be byte-reproducible, and nothing else in the CLI reads wall time.
var testClock = obs.ManualClock{T: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}

// update regenerates the golden files: go test ./cmd/cohort-bench -update
var update = flag.Bool("update", false, "rewrite golden files")

// quickArgs keeps the golden runs at test sizing (two benchmarks, small GA).
func quickArgs(extra ...string) []string {
	args := []string{
		"-scale", "0.01", "-cap", "800", "-benches", "fft,water",
		"-pop", "8", "-gens", "6",
	}
	return append(args, extra...)
}

// TestGolden locks the rendered text tables at the byte level: a
// parallelization regression that reorders rows or cells shows up as a
// golden-file diff. Each experiment is rendered twice — serial (-j 1) and
// parallel (-j 8) — and both must match the golden byte for byte.
func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"table1", []string{"-run", "table1"}},
		{"fig5a", quickArgs("-run", "fig5a")},
		{"fig6a", quickArgs("-run", "fig6a")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			experiments.ResetMemo()
			var serial bytes.Buffer
			if err := run(append(tc.args, "-j", "1"), &serial, testClock); err != nil {
				t.Fatalf("run -j 1: %v", err)
			}
			experiments.ResetMemo()
			var par bytes.Buffer
			if err := run(append(tc.args, "-j", "8"), &par, testClock); err != nil {
				t.Fatalf("run -j 8: %v", err)
			}
			if !bytes.Equal(serial.Bytes(), par.Bytes()) {
				t.Fatalf("-j 1 and -j 8 output differ:\n--- j1 ---\n%s\n--- j8 ---\n%s", serial.Bytes(), par.Bytes())
			}

			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, serial.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(serial.Bytes(), want) {
				t.Errorf("output differs from %s (re-run with -update if the change is intended):\n--- got ---\n%s\n--- want ---\n%s",
					golden, serial.Bytes(), want)
			}
		})
	}
}

// TestRunRejectsUnknownExperiment covers the CLI's selector validation.
func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "fig9z"}, &out, testClock); err == nil {
		t.Fatal("expected an error for an unknown experiment name")
	}
}

// TestManifestAndTraceWritten drives the -out-dir path end to end: the run
// must leave a schema-valid manifest and a Chrome trace in the directory,
// and the manifest's metrics snapshot must be byte-identical between -j 1
// and -j 8 (the config key is shared, only the file's j suffix differs).
func TestManifestAndTraceWritten(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(jobs string) *obs.Manifest {
		t.Helper()
		experiments.ResetMemo()
		var out bytes.Buffer
		if err := run(quickArgs("-run", "fig5a", "-j", jobs, "-out-dir", dir), &out, testClock); err != nil {
			t.Fatalf("run -j %s: %v", jobs, err)
		}
		ms, err := obs.LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			if m.Workers == 1 && jobs == "1" || m.Workers == 8 && jobs == "8" {
				return m
			}
		}
		t.Fatalf("no manifest for -j %s in %v", jobs, ms)
		return nil
	}
	serial := runOnce("1")
	par := runOnce("8")

	if serial.Tool != "cohort-bench" {
		t.Errorf("tool = %q", serial.Tool)
	}
	if serial.ConfigKey != par.ConfigKey {
		t.Errorf("config keys differ across worker counts: %s vs %s", serial.ConfigKey, par.ConfigKey)
	}
	if len(serial.Traces) != 2 {
		t.Errorf("expected 2 trace refs (fft, water), got %+v", serial.Traces)
	}
	if serial.Engine == nil || serial.Engine.Jobs == 0 {
		t.Errorf("engine counters missing: %+v", serial.Engine)
	}
	sm, pm := serial.Metrics.JSON(), par.Metrics.JSON()
	if !bytes.Equal(sm, pm) {
		t.Errorf("manifest metrics differ across worker counts:\n--- j1 ---\n%s\n--- j8 ---\n%s", sm, pm)
	}
	if _, ok := serial.Metrics.Get("experiments_figures_total"); !ok {
		t.Errorf("metrics snapshot missing figure counter:\n%s", serial.Metrics.String())
	}

	traces, err := filepath.Glob(filepath.Join(dir, "*.trace.json"))
	if err != nil || len(traces) == 0 {
		t.Fatalf("no chrome trace written (err %v)", err)
	}
	b, err := os.ReadFile(traces[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"traceEvents"`) || !strings.Contains(string(b), "fig5/all-cr") {
		t.Errorf("chrome trace missing expected content:\n%s", b)
	}
}

// TestPprofFlagsWriteProfiles exercises the satellite profiling flags.
func TestPprofFlagsWriteProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	experiments.ResetMemo()
	var out bytes.Buffer
	if err := run(quickArgs("-run", "table1", "-cpuprofile", cpu, "-memprofile", mem), &out, testClock); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestAttributionExperiment drives -run attribution end to end: the rendered
// table and summary cover all three systems, and with -out-dir the manifest
// carries the decomposition rows (schema-validated by LoadDir).
func TestAttributionExperiment(t *testing.T) {
	dir := t.TempDir()
	experiments.ResetMemo()
	var out bytes.Buffer
	if err := run(quickArgs("-run", "attribution", "-benches", "fft", "-out-dir", dir), &out, testClock); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"WCML attribution", "CoHoRT", "PCC", "PENDULUM", "timer-protection stalls"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}

	ms, err := obs.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("manifests = %d", len(ms))
	}
	rows := ms[0].Attribution
	if len(rows) == 0 {
		t.Fatal("manifest has no attribution rows")
	}
	for _, r := range rows {
		if sum := r.Arbitration + r.TimerStall + r.Transfer + r.DRAM + r.HitCycles; sum != r.TotalLatency {
			t.Fatalf("row %+v violates the decomposition identity", r)
		}
	}
}

// TestListenServesDuringRun starts a run with -listen on an ephemeral port
// and scrapes all four endpoint families while it executes. The bound
// address is discovered by polling the tracker-free startup log line.
func TestListenServesDuringRun(t *testing.T) {
	// The in-process variant can't easily scrape mid-run (run() blocks and
	// closes the server on return); the obs package tests cover the server
	// itself and CI scrapes a live cohort-bench run. Here we only pin that
	// -listen on a bad address fails fast instead of being ignored.
	var out bytes.Buffer
	if err := run(quickArgs("-run", "table1", "-listen", "256.0.0.1:0"), &out, testClock); err == nil {
		t.Fatal("bad -listen address accepted")
	}
}
