// Command cohort-bench regenerates the paper's evaluation artifacts: every
// sub-figure of Fig. 5 and Fig. 6, the mode-switch experiment of Fig. 7,
// Tables I and II, and the design-choice ablations.
//
// Usage:
//
//	cohort-bench -run all
//	cohort-bench -run fig5a,fig6a,fig7 -j 8
//	cohort-bench -run table2 -bench fft -scale 0.1
//	cohort-bench -run all -md > results.md
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cohort"
	"cohort/internal/cliutil"
	"cohort/internal/experiments"
	"cohort/internal/obs"
	"cohort/internal/parallel"
	"cohort/internal/stats"
)

var known = []string{
	"table1", "fig5a", "fig5b", "fig5c", "fig6a", "fig6b", "fig6c",
	"fig7", "table2", "nonperfect", "attribution",
	"ablation-arbiter", "ablation-transfer", "ablation-timer", "ablation-snoop",
	"ablation-optimizer", "ablation-l1ways", "ablation-nonblocking", "scalability",
}

func main() {
	if err := run(os.Args[1:], os.Stdout, obs.WallClock{}); err != nil {
		cliutil.Fatal("cohort-bench", err)
	}
}

// run executes the selected experiments and writes their tables to stdout.
// Factored out of main so the golden-file tests drive the exact CLI path;
// clk is the injected wall clock (tests pass obs.ManualClock so manifests
// are byte-reproducible).
func run(args []string, stdout io.Writer, clk obs.Clock) error {
	fs := flag.NewFlagSet("cohort-bench", flag.ContinueOnError)
	cu := cliutil.New("cohort-bench")
	cu.RegisterWork(fs)
	cu.RegisterObs(fs)
	cu.RegisterProfile(fs)
	var (
		runList   = fs.String("run", "all", "comma-separated experiments: "+strings.Join(known, ", ")+" or 'all'")
		scale     = fs.Float64("scale", 0.05, "access-count scale factor")
		cap       = fs.Int("cap", 4000, "cap on accesses per core after scaling (0 = none)")
		seed      = fs.Uint64("seed", 42, "trace generator seed")
		bench     = fs.String("bench", "fft", "benchmark for fig7/table2")
		benches   = fs.String("benches", "", "comma-separated benchmark subset for fig5/fig6/ablations (default: all)")
		pop       = fs.Int("pop", 20, "GA population")
		gens      = fs.Int("gens", 16, "GA generations")
		md        = fs.Bool("md", false, "emit markdown tables")
		memoStats = fs.Bool("memo-stats", false, "report memo-cache counters on stderr (counters are scheduling-dependent, never part of the tables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := cu.Logger(os.Stderr, clk)
	if err != nil {
		return err
	}
	stopProfiles, err := cu.StartProfiles(log)
	if err != nil {
		return err
	}
	defer stopProfiles()

	o := experiments.DefaultOptions()
	o.Scale = *scale
	o.MaxAccessesPerCore = *cap
	o.Seed = *seed
	o.GA.Pop, o.GA.Generations = *pop, *gens
	o.Jobs = cu.Jobs
	o.GA.Workers = cu.Jobs
	// Like the worker count, the oracle batch width and the curve oracle
	// change only the cost of a run, never its results — both are excluded
	// from benchConfigKey so scalar, batched and curve runs of one
	// configuration share a key and cohort-report can diff them. The tier-2
	// surrogate does change results and joins the key when enabled.
	o.GA.OracleBatch = cu.Batch
	o.GA.OracleCurve = cu.Curve
	o.GA.Surrogate = cu.Surrogate
	if *benches != "" {
		o.Benchmarks = strings.Split(*benches, ",")
	}

	sel := map[string]bool{}
	if *runList == "all" {
		for _, k := range known {
			sel[k] = true
		}
	} else {
		for _, k := range strings.Split(*runList, ",") {
			k = strings.TrimSpace(k)
			found := false
			for _, kk := range known {
				if kk == k {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("unknown experiment %q (known: %s)", k, strings.Join(known, ", "))
			}
			sel[k] = true
		}
	}
	// selected lists the chosen experiments in canonical (known) order, so
	// "-run fig6a,fig5a" and "-run fig5a,fig6a" share a config key.
	var selected []string
	for _, k := range known {
		if sel[k] {
			selected = append(selected, k)
		}
	}

	var (
		man *obs.Manifest
		rec *obs.Recorder
	)
	if cu.OutDir != "" {
		man = obs.NewManifest("cohort-bench", clk)
		man.Args = args
		o.Metrics = obs.NewRegistry()
		rec = obs.NewRecorder()
		o.Recorder = rec
	}

	// Live observability: the tracker's handle feeds the pull-sampled /runs
	// and /metrics endpoints; the experiment harness bumps it through the
	// package-level progress hook. All of it is outside canonical output —
	// tables, manifests and fingerprints are byte-identical with or without
	// -listen.
	tracker := obs.NewRunTracker(clk)
	rh := tracker.Register("cohort-bench", *runList)
	rh.SetCellsTotal(int64(len(selected)))
	defer func() {
		rh.Finish()
		tracker.Unregister(rh)
	}()
	prev := experiments.AttachProgress(rh)
	defer experiments.AttachProgress(prev)
	if cu.Listen != "" && o.Metrics == nil {
		// Serve experiment metrics even without -out-dir; figure publishes go
		// through Registry.Sync, so live scrapes are race-free.
		o.Metrics = obs.NewRegistry()
	}
	srv, err := cu.StartServer(o.Metrics, tracker, log)
	if err != nil {
		return err
	}
	defer srv.Close()

	emit := func(t *stats.Table) {
		if *md {
			fmt.Fprintln(stdout, t.Markdown())
		} else {
			fmt.Fprintln(stdout, t.String())
		}
	}

	// cells lists every experiment runner in output order. Driving them from
	// one table keeps the progress accounting (AddCellsDone) in one place.
	type cell struct {
		key string
		run func() error
	}
	renderSummary := func(t *stats.Table, summary string) {
		emit(t)
		fmt.Fprintln(stdout, summary)
		fmt.Fprintln(stdout)
	}
	cells := []cell{
		{"table1", func() error { emit(cohort.Table1()); return nil }},
		{"fig5a", func() error { return runFig5(o, "all-cr", renderSummary) }},
		{"fig5b", func() error { return runFig5(o, "2cr-2ncr", renderSummary) }},
		{"fig5c", func() error { return runFig5(o, "1cr-3ncr", renderSummary) }},
		{"fig6a", func() error { return runFig6(o, "all-cr", renderSummary) }},
		{"fig6b", func() error { return runFig6(o, "2cr-2ncr", renderSummary) }},
		{"fig6c", func() error { return runFig6(o, "1cr-3ncr", renderSummary) }},
		{"fig7", func() error {
			res, err := experiments.Fig7(o, *bench, 1.5, 1.8)
			if err != nil {
				return err
			}
			for _, t := range res.Render() {
				emit(t)
			}
			fmt.Fprintln(stdout, res.Summary())
			fmt.Fprintln(stdout)
			return nil
		}},
		{"table2", func() error {
			res, err := experiments.Table2(o, *bench)
			if err != nil {
				return err
			}
			emit(res.Render())
			return nil
		}},
		{"nonperfect", func() error {
			res, err := experiments.NonPerfect(o)
			if err != nil {
				return err
			}
			renderSummary(res.Render(), res.Summary())
			return nil
		}},
		{"attribution", func() error {
			res, err := experiments.Attribution(o, "all-cr")
			if err != nil {
				return err
			}
			renderSummary(res.Render(), res.Summary())
			if man != nil {
				man.Attribution = res.ManifestRows()
			}
			return nil
		}},
		{"ablation-arbiter", func() error {
			res, err := experiments.AblationArbiter(o)
			if err != nil {
				return err
			}
			emit(res.Render())
			return nil
		}},
		{"ablation-transfer", func() error {
			res, err := experiments.AblationTransfer(o)
			if err != nil {
				return err
			}
			emit(res.Render())
			return nil
		}},
		{"ablation-timer", func() error {
			res, err := experiments.AblationTimer(o, nil)
			if err != nil {
				return err
			}
			emit(res.Render())
			return nil
		}},
		{"ablation-snoop", func() error {
			res, err := experiments.AblationSnoop(o)
			if err != nil {
				return err
			}
			emit(res.Render())
			return nil
		}},
		{"ablation-l1ways", func() error {
			res, err := experiments.AblationL1Ways(o, 100, nil)
			if err != nil {
				return err
			}
			emit(res.Render())
			return nil
		}},
		{"ablation-nonblocking", func() error {
			res, err := experiments.AblationNonBlocking(o)
			if err != nil {
				return err
			}
			emit(res.Render())
			return nil
		}},
		{"ablation-optimizer", func() error {
			res, err := experiments.AblationOptimizer(o)
			if err != nil {
				return err
			}
			emit(res.Render())
			return nil
		}},
		{"scalability", func() error {
			res, err := experiments.ExtensionScalability(o, *bench, 50, nil)
			if err != nil {
				return err
			}
			emit(res.Render())
			return nil
		}},
	}
	for _, c := range cells {
		if !sel[c.key] {
			continue
		}
		if err := c.run(); err != nil {
			return err
		}
		rh.AddCellsDone(1)
	}
	engine := experiments.MemoStats()
	if *memoStats {
		// Routed through the registry machinery so the counters render in the
		// same canonical form as every other metric. They live in their own
		// throwaway registry, never the manifest one: the hit/miss split is
		// scheduling-dependent, and manifest metrics must stay byte-identical
		// across worker counts.
		sreg := obs.NewRegistry()
		sreg.Gauge("memo_jobs_total").Set(engine.Jobs)
		sreg.Gauge("memo_cache_hits").Set(engine.CacheHits)
		sreg.Gauge("memo_cache_misses").Set(engine.CacheMisses)
		log.Infof("cohort-bench memo:\n%s", strings.TrimSuffix(sreg.Snapshot().String(), "\n"))
	}
	if man != nil {
		refs, err := experiments.TraceRefs(o)
		if err != nil {
			return err
		}
		man.ConfigKey = benchConfigKey(selected, *bench, &o)
		man.Traces = refs
		man.Seed = int64(*seed)
		man.Workers = parallel.DefaultWorkers(cu.Jobs)
		man.OracleBatch = cu.Batch
		man.Curve = cu.Curve
		man.Engine = &engine
		man.Metrics = o.Metrics.Snapshot()
		man.Finish(clk)
		path, err := man.Write(cu.OutDir)
		if err != nil {
			return err
		}
		tracePath := strings.TrimSuffix(path, ".manifest.json") + ".trace.json"
		tf, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteChrome(tf); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
		log.Infof("cohort-bench: wrote %s and %s", path, tracePath)
	}
	return nil
}

// runFig5 runs one Fig. 5 scenario and renders it through the shared
// table+summary shape.
func runFig5(o experiments.Options, scenario string, render func(*stats.Table, string)) error {
	res, err := experiments.Fig5(o, scenario)
	if err != nil {
		return err
	}
	render(res.Render(), res.Summary())
	return nil
}

// runFig6 is runFig5's Fig. 6 counterpart.
func runFig6(o experiments.Options, scenario string, render func(*stats.Table, string)) error {
	res, err := experiments.Fig6(o, scenario)
	if err != nil {
		return err
	}
	render(res.Render(), res.Summary())
	return nil
}

// benchConfigKey fingerprints the effective experiment configuration —
// everything that determines the results, and nothing that doesn't: the
// worker count is deliberately excluded so -j 1 and -j 8 runs of the same
// configuration share a key and cohort-report can compare them.
func benchConfigKey(selected []string, bench string, o *experiments.Options) string {
	k := parallel.NewKey("cohort-bench/config")
	k.Int(len(selected))
	for _, s := range selected {
		k.Str(s)
	}
	k.Str(bench)
	k.Int(o.NCores).Float64(o.Scale).Int(o.MaxAccessesPerCore).Uint64(o.Seed)
	k.Int(len(o.Benchmarks))
	for _, b := range o.Benchmarks {
		k.Str(b)
	}
	g := o.GA
	k.Int(g.Pop).Int(g.Generations).Int(g.Elite).Int(g.TournamentK)
	k.Float64(g.CrossoverProb).Float64(g.MutationProb).Uint64(g.Seed)
	// Surrogate-off keys must stay byte-stable (the perf-smoke fingerprints
	// are built on them), so tier 2 joins the key only when enabled.
	if g.Surrogate {
		k.Bool(true).Float64(g.SurrogateMargin)
	}
	return hex.EncodeToString([]byte(k.Sum()))
}
