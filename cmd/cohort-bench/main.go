// Command cohort-bench regenerates the paper's evaluation artifacts: every
// sub-figure of Fig. 5 and Fig. 6, the mode-switch experiment of Fig. 7,
// Tables I and II, and the design-choice ablations.
//
// Usage:
//
//	cohort-bench -run all
//	cohort-bench -run fig5a,fig6a,fig7 -j 8
//	cohort-bench -run table2 -bench fft -scale 0.1
//	cohort-bench -run all -md > results.md
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"cohort"
	"cohort/internal/experiments"
	"cohort/internal/obs"
	"cohort/internal/parallel"
	"cohort/internal/stats"
)

var known = []string{
	"table1", "fig5a", "fig5b", "fig5c", "fig6a", "fig6b", "fig6c",
	"fig7", "table2", "nonperfect",
	"ablation-arbiter", "ablation-transfer", "ablation-timer", "ablation-snoop",
	"ablation-optimizer", "ablation-l1ways", "ablation-nonblocking", "scalability",
}

func main() {
	if err := run(os.Args[1:], os.Stdout, obs.WallClock{}); err != nil {
		fmt.Fprintln(os.Stderr, "cohort-bench:", err)
		os.Exit(1)
	}
}

// run executes the selected experiments and writes their tables to stdout.
// Factored out of main so the golden-file tests drive the exact CLI path;
// clk is the injected wall clock (tests pass obs.ManualClock so manifests
// are byte-reproducible).
func run(args []string, stdout io.Writer, clk obs.Clock) error {
	fs := flag.NewFlagSet("cohort-bench", flag.ContinueOnError)
	var (
		runList    = fs.String("run", "all", "comma-separated experiments: "+strings.Join(known, ", ")+" or 'all'")
		scale      = fs.Float64("scale", 0.05, "access-count scale factor")
		cap        = fs.Int("cap", 4000, "cap on accesses per core after scaling (0 = none)")
		seed       = fs.Uint64("seed", 42, "trace generator seed")
		bench      = fs.String("bench", "fft", "benchmark for fig7/table2")
		benches    = fs.String("benches", "", "comma-separated benchmark subset for fig5/fig6/ablations (default: all)")
		pop        = fs.Int("pop", 20, "GA population")
		gens       = fs.Int("gens", 16, "GA generations")
		md         = fs.Bool("md", false, "emit markdown tables")
		jobs       = fs.Int("j", 0, "evaluation workers (1 = serial, <1 = NumCPU); output is identical for every value")
		batch      = fs.Int("batch", 0, "analysis-oracle batch width (0 or 1 = scalar oracle, >=2 = batched SoA oracle); output is identical for every value")
		memoStats  = fs.Bool("memo-stats", false, "report memo-cache counters on stderr (counters are scheduling-dependent, never part of the tables)")
		outDir     = fs.String("out-dir", "", "write a run manifest and a Chrome trace (Perfetto) into this directory")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cohort-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "cohort-bench: memprofile:", err)
			}
		}()
	}

	o := experiments.DefaultOptions()
	o.Scale = *scale
	o.MaxAccessesPerCore = *cap
	o.Seed = *seed
	o.GA.Pop, o.GA.Generations = *pop, *gens
	o.Jobs = *jobs
	o.GA.Workers = *jobs
	// Like the worker count, the oracle batch width changes only the cost of
	// a run, never its results — it is excluded from benchConfigKey so scalar
	// and batched runs of one configuration share a key and cohort-report can
	// diff them.
	o.GA.OracleBatch = *batch
	if *benches != "" {
		o.Benchmarks = strings.Split(*benches, ",")
	}

	sel := map[string]bool{}
	if *runList == "all" {
		for _, k := range known {
			sel[k] = true
		}
	} else {
		for _, k := range strings.Split(*runList, ",") {
			k = strings.TrimSpace(k)
			found := false
			for _, kk := range known {
				if kk == k {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("unknown experiment %q (known: %s)", k, strings.Join(known, ", "))
			}
			sel[k] = true
		}
	}
	// selected lists the chosen experiments in canonical (known) order, so
	// "-run fig6a,fig5a" and "-run fig5a,fig6a" share a config key.
	var selected []string
	for _, k := range known {
		if sel[k] {
			selected = append(selected, k)
		}
	}

	var (
		man *obs.Manifest
		rec *obs.Recorder
	)
	if *outDir != "" {
		man = obs.NewManifest("cohort-bench", clk)
		man.Args = args
		o.Metrics = obs.NewRegistry()
		rec = obs.NewRecorder()
		o.Recorder = rec
	}

	emit := func(t *stats.Table) {
		if *md {
			fmt.Fprintln(stdout, t.Markdown())
		} else {
			fmt.Fprintln(stdout, t.String())
		}
	}

	if sel["table1"] {
		emit(cohort.Table1())
	}
	for _, sub := range []struct{ key, scenario string }{
		{"fig5a", "all-cr"}, {"fig5b", "2cr-2ncr"}, {"fig5c", "1cr-3ncr"},
	} {
		if !sel[sub.key] {
			continue
		}
		res, err := experiments.Fig5(o, sub.scenario)
		if err != nil {
			return err
		}
		emit(res.Render())
		fmt.Fprintln(stdout, res.Summary())
		fmt.Fprintln(stdout)
	}
	for _, sub := range []struct{ key, scenario string }{
		{"fig6a", "all-cr"}, {"fig6b", "2cr-2ncr"}, {"fig6c", "1cr-3ncr"},
	} {
		if !sel[sub.key] {
			continue
		}
		res, err := experiments.Fig6(o, sub.scenario)
		if err != nil {
			return err
		}
		emit(res.Render())
		fmt.Fprintln(stdout, res.Summary())
		fmt.Fprintln(stdout)
	}
	if sel["fig7"] {
		res, err := experiments.Fig7(o, *bench, 1.5, 1.8)
		if err != nil {
			return err
		}
		for _, t := range res.Render() {
			emit(t)
		}
		fmt.Fprintln(stdout, res.Summary())
		fmt.Fprintln(stdout)
	}
	if sel["table2"] {
		res, err := experiments.Table2(o, *bench)
		if err != nil {
			return err
		}
		emit(res.Render())
	}
	if sel["nonperfect"] {
		res, err := experiments.NonPerfect(o)
		if err != nil {
			return err
		}
		emit(res.Render())
		fmt.Fprintln(stdout, res.Summary())
		fmt.Fprintln(stdout)
	}
	if sel["ablation-arbiter"] {
		res, err := experiments.AblationArbiter(o)
		if err != nil {
			return err
		}
		emit(res.Render())
	}
	if sel["ablation-transfer"] {
		res, err := experiments.AblationTransfer(o)
		if err != nil {
			return err
		}
		emit(res.Render())
	}
	if sel["ablation-timer"] {
		res, err := experiments.AblationTimer(o, nil)
		if err != nil {
			return err
		}
		emit(res.Render())
	}
	if sel["ablation-snoop"] {
		res, err := experiments.AblationSnoop(o)
		if err != nil {
			return err
		}
		emit(res.Render())
	}
	if sel["ablation-l1ways"] {
		res, err := experiments.AblationL1Ways(o, 100, nil)
		if err != nil {
			return err
		}
		emit(res.Render())
	}
	if sel["ablation-nonblocking"] {
		res, err := experiments.AblationNonBlocking(o)
		if err != nil {
			return err
		}
		emit(res.Render())
	}
	if sel["ablation-optimizer"] {
		res, err := experiments.AblationOptimizer(o)
		if err != nil {
			return err
		}
		emit(res.Render())
	}
	if sel["scalability"] {
		res, err := experiments.ExtensionScalability(o, *bench, 50, nil)
		if err != nil {
			return err
		}
		emit(res.Render())
	}
	engine := experiments.MemoStats()
	if *memoStats {
		// Routed through the registry machinery so the counters render in the
		// same canonical form as every other metric. They live in their own
		// throwaway registry, never the manifest one: the hit/miss split is
		// scheduling-dependent, and manifest metrics must stay byte-identical
		// across worker counts.
		sreg := obs.NewRegistry()
		sreg.Gauge("memo_jobs_total").Set(engine.Jobs)
		sreg.Gauge("memo_cache_hits").Set(engine.CacheHits)
		sreg.Gauge("memo_cache_misses").Set(engine.CacheMisses)
		fmt.Fprint(os.Stderr, "cohort-bench memo:\n"+sreg.Snapshot().String())
	}
	if man != nil {
		refs, err := experiments.TraceRefs(o)
		if err != nil {
			return err
		}
		man.ConfigKey = benchConfigKey(selected, *bench, &o)
		man.Traces = refs
		man.Seed = int64(*seed)
		man.Workers = parallel.DefaultWorkers(*jobs)
		man.OracleBatch = *batch
		man.Engine = &engine
		man.Metrics = o.Metrics.Snapshot()
		man.Finish(clk)
		path, err := man.Write(*outDir)
		if err != nil {
			return err
		}
		tracePath := strings.TrimSuffix(path, ".manifest.json") + ".trace.json"
		tf, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteChrome(tf); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cohort-bench: wrote %s and %s\n", path, tracePath)
	}
	return nil
}

// benchConfigKey fingerprints the effective experiment configuration —
// everything that determines the results, and nothing that doesn't: the
// worker count is deliberately excluded so -j 1 and -j 8 runs of the same
// configuration share a key and cohort-report can compare them.
func benchConfigKey(selected []string, bench string, o *experiments.Options) string {
	k := parallel.NewKey("cohort-bench/config")
	k.Int(len(selected))
	for _, s := range selected {
		k.Str(s)
	}
	k.Str(bench)
	k.Int(o.NCores).Float64(o.Scale).Int(o.MaxAccessesPerCore).Uint64(o.Seed)
	k.Int(len(o.Benchmarks))
	for _, b := range o.Benchmarks {
		k.Str(b)
	}
	g := o.GA
	k.Int(g.Pop).Int(g.Generations).Int(g.Elite).Int(g.TournamentK)
	k.Float64(g.CrossoverProb).Float64(g.MutationProb).Uint64(g.Seed)
	return hex.EncodeToString([]byte(k.Sum()))
}
