// Command cohort-opt runs the requirement-aware timer optimizer (paper §V):
// a genetic algorithm searches timer vectors Θ, querying the in-isolation
// cache analysis for guaranteed hits, and minimizes the average worst-case
// memory latency per request subject to per-core WCML requirements.
//
// Usage:
//
//	cohort-opt -bench fft
//	cohort-opt -bench radix -timed 1,1,0,0 -gamma 0,2000000,0,0
//	cohort-opt -bench water -pop 64 -gens 80 -seed 7
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cohort"
	"cohort/internal/cliutil"
	"cohort/internal/experiments"
	"cohort/internal/obs"
	"cohort/internal/parallel"
)

func main() {
	cu := cliutil.New("cohort-opt")
	cu.RegisterWork(flag.CommandLine)
	cu.RegisterObs(flag.CommandLine)
	cu.RegisterProfile(flag.CommandLine)
	var (
		bench = flag.String("bench", "fft", "benchmark profile")
		cores = flag.Int("cores", 4, "number of cores")
		scale = flag.Float64("scale", 0.05, "access-count scale factor")
		seed  = flag.Uint64("seed", 42, "trace generator seed")
		timed = flag.String("timed", "", "comma-separated 0/1 mask of GA-optimized cores (default: all)")
		gamma = flag.String("gamma", "", "comma-separated per-core WCML requirements Γ in cycles (0 = none)")
		pop   = flag.Int("pop", 32, "GA population size")
		gens  = flag.Int("gens", 40, "GA generations")
		gaSd  = flag.Uint64("ga-seed", 1, "GA random seed")
	)
	flag.Parse()

	clk := obs.Clock(obs.WallClock{})
	log, err := cu.Logger(os.Stderr, clk)
	if err != nil {
		fatal(err)
	}
	stopProfiles, err := cu.StartProfiles(log)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	p, err := cohort.ProfileByName(*bench)
	if err != nil {
		fatal(err)
	}
	tr := p.Scaled(*scale).Generate(*cores, 64, *seed)

	timedMask := make([]bool, *cores)
	for i := range timedMask {
		timedMask[i] = true
	}
	if *timed != "" {
		parts := strings.Split(*timed, ",")
		if len(parts) != *cores {
			fatal(fmt.Errorf("-timed has %d values for %d cores", len(parts), *cores))
		}
		for i, s := range parts {
			timedMask[i] = strings.TrimSpace(s) == "1"
		}
	}
	var gammas []int64
	if *gamma != "" {
		parts := strings.Split(*gamma, ",")
		if len(parts) != *cores {
			fatal(fmt.Errorf("-gamma has %d values for %d cores", len(parts), *cores))
		}
		for _, s := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad Γ %q: %v", s, err))
			}
			gammas = append(gammas, v)
		}
	}

	base := cohort.PaperDefaults(*cores, 1)
	prob := &cohort.Problem{
		Lat:     base.Lat,
		L1:      base.L1,
		Streams: tr.Streams,
		Timed:   timedMask,
		Gamma:   gammas,
	}
	gc := cohort.DefaultGA(*gaSd)
	gc.Pop, gc.Generations = *pop, *gens
	gc.Workers = cu.Jobs
	gc.OracleBatch = cu.Batch
	gc.OracleCurve = cu.Curve
	gc.Surrogate = cu.Surrogate

	var man *obs.Manifest
	if cu.OutDir != "" {
		man = obs.NewManifest("cohort-opt", clk)
		man.Args = os.Args[1:]
		gc.Metrics = obs.NewRegistry()
		gc.Recorder = obs.NewRecorder()
	}

	// Live observability: the GA publishes generation progress and memo/lane
	// counters to the tracker handle; the debug server pull-samples them.
	// None of it feeds the canonical result or manifest.
	tracker := obs.NewRunTracker(clk)
	rh := tracker.Register("cohort-opt", *bench)
	gc.Progress = rh
	if cu.Listen != "" && gc.Metrics == nil {
		// Serve GA metrics even without -out-dir; Optimize publishes them
		// under Registry.Sync, so live scrapes are race-free.
		gc.Metrics = obs.NewRegistry()
	}
	srv, err := cu.StartServer(gc.Metrics, tracker, log)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	res, err := cohort.Optimize(prob, gc)
	if err != nil {
		fatal(err)
	}
	rh.Finish()

	if man != nil {
		// The config key covers every parameter that determines the Result —
		// and not Workers, OracleBatch or OracleCurve, which by contract do
		// not. The tier-2 surrogate does and joins the key when enabled (and
		// only then, so surrogate-off keys stay byte-stable).
		k := parallel.NewKey("cohort-opt/config")
		k.Str(experiments.Fingerprint(tr)).Int(*cores)
		for _, b := range timedMask {
			k.Bool(b)
		}
		k.Int(len(gammas))
		for _, g := range gammas {
			k.Int64(g)
		}
		k.Int(gc.Pop).Int(gc.Generations).Int(gc.Elite).Int(gc.TournamentK)
		k.Float64(gc.CrossoverProb).Float64(gc.MutationProb).Uint64(gc.Seed)
		if gc.Surrogate {
			k.Bool(true).Float64(gc.SurrogateMargin)
		}
		man.ConfigKey = hex.EncodeToString([]byte(k.Sum()))
		man.Traces = []obs.TraceRef{{Name: tr.Name, Fingerprint: experiments.Fingerprint(tr)}}
		man.Seed = int64(*seed)
		man.Workers = parallel.DefaultWorkers(cu.Jobs)
		man.OracleBatch = cu.Batch
		man.Curve = cu.Curve
		engine := res.Engine
		man.Engine = &engine
		man.Metrics = gc.Metrics.Snapshot()
		man.Finish(clk)
		path, err := man.Write(cu.OutDir)
		if err != nil {
			fatal(err)
		}
		tracePath := strings.TrimSuffix(path, ".manifest.json") + ".trace.json"
		tf, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		if err := gc.Recorder.WriteChrome(tf); err != nil {
			fatal(err)
		}
		if err := tf.Close(); err != nil {
			fatal(err)
		}
		log.Infof("cohort-opt: wrote %s and %s", path, tracePath)
	}

	fmt.Printf("workload %s: %d oracle evaluations, feasible %v\n",
		tr.Name, res.Evaluations, res.Eval.Feasible())
	if res.Engine.Jobs > 0 {
		fmt.Printf("memo-cache: %s\n", res.Engine)
	}
	fmt.Printf("objective (avg worst-case cycles per request, summed over timed cores): %.2f\n",
		res.Eval.Objective)
	g := 0
	for i, th := range res.Timers {
		line := fmt.Sprintf("  θ_%d = %v", i, th)
		if timedMask[i] {
			line += fmt.Sprintf("   (θ_is = %v)", res.ThetaIS[g])
			g++
		}
		fmt.Println(line)
	}
	fmt.Println("per-core bounds at the chosen timers:")
	for _, b := range res.Eval.PerCore {
		fmt.Printf("  core %d: WCL %d, guaranteed hits %d / misses %d, WCML bound %d\n",
			b.Core, b.WCL, b.MHit, b.MMiss, b.WCMLBound)
	}
	if len(res.BestHistory) > 0 {
		fmt.Printf("best fitness: first generation %.2f → last %.2f\n",
			res.BestHistory[0], res.BestHistory[len(res.BestHistory)-1])
	}
}

func fatal(err error) {
	cliutil.Fatal("cohort-opt", err)
}
