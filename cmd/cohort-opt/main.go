// Command cohort-opt runs the requirement-aware timer optimizer (paper §V):
// a genetic algorithm searches timer vectors Θ, querying the in-isolation
// cache analysis for guaranteed hits, and minimizes the average worst-case
// memory latency per request subject to per-core WCML requirements.
//
// Usage:
//
//	cohort-opt -bench fft
//	cohort-opt -bench radix -timed 1,1,0,0 -gamma 0,2000000,0,0
//	cohort-opt -bench water -pop 64 -gens 80 -seed 7
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"cohort"
	"cohort/internal/experiments"
	"cohort/internal/obs"
	"cohort/internal/parallel"
)

func main() {
	var (
		bench      = flag.String("bench", "fft", "benchmark profile")
		cores      = flag.Int("cores", 4, "number of cores")
		scale      = flag.Float64("scale", 0.05, "access-count scale factor")
		seed       = flag.Uint64("seed", 42, "trace generator seed")
		timed      = flag.String("timed", "", "comma-separated 0/1 mask of GA-optimized cores (default: all)")
		gamma      = flag.String("gamma", "", "comma-separated per-core WCML requirements Γ in cycles (0 = none)")
		pop        = flag.Int("pop", 32, "GA population size")
		gens       = flag.Int("gens", 40, "GA generations")
		gaSd       = flag.Uint64("ga-seed", 1, "GA random seed")
		jobs       = flag.Int("j", 0, "evaluation workers (1 = serial, <1 = NumCPU); the result is identical for every value")
		outDir     = flag.String("out-dir", "", "write a run manifest and a GA Chrome trace (Perfetto) into this directory")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	clk := obs.Clock(obs.WallClock{})
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cohort-opt: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "cohort-opt: memprofile:", err)
			}
		}()
	}

	p, err := cohort.ProfileByName(*bench)
	if err != nil {
		fatal(err)
	}
	tr := p.Scaled(*scale).Generate(*cores, 64, *seed)

	timedMask := make([]bool, *cores)
	for i := range timedMask {
		timedMask[i] = true
	}
	if *timed != "" {
		parts := strings.Split(*timed, ",")
		if len(parts) != *cores {
			fatal(fmt.Errorf("-timed has %d values for %d cores", len(parts), *cores))
		}
		for i, s := range parts {
			timedMask[i] = strings.TrimSpace(s) == "1"
		}
	}
	var gammas []int64
	if *gamma != "" {
		parts := strings.Split(*gamma, ",")
		if len(parts) != *cores {
			fatal(fmt.Errorf("-gamma has %d values for %d cores", len(parts), *cores))
		}
		for _, s := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad Γ %q: %v", s, err))
			}
			gammas = append(gammas, v)
		}
	}

	base := cohort.PaperDefaults(*cores, 1)
	prob := &cohort.Problem{
		Lat:     base.Lat,
		L1:      base.L1,
		Streams: tr.Streams,
		Timed:   timedMask,
		Gamma:   gammas,
	}
	gc := cohort.DefaultGA(*gaSd)
	gc.Pop, gc.Generations = *pop, *gens
	gc.Workers = *jobs

	var man *obs.Manifest
	if *outDir != "" {
		man = obs.NewManifest("cohort-opt", clk)
		man.Args = os.Args[1:]
		gc.Metrics = obs.NewRegistry()
		gc.Recorder = obs.NewRecorder()
	}

	res, err := cohort.Optimize(prob, gc)
	if err != nil {
		fatal(err)
	}

	if man != nil {
		// The config key covers every parameter that determines the Result —
		// and not Workers, which by contract does not.
		k := parallel.NewKey("cohort-opt/config")
		k.Str(experiments.Fingerprint(tr)).Int(*cores)
		for _, b := range timedMask {
			k.Bool(b)
		}
		k.Int(len(gammas))
		for _, g := range gammas {
			k.Int64(g)
		}
		k.Int(gc.Pop).Int(gc.Generations).Int(gc.Elite).Int(gc.TournamentK)
		k.Float64(gc.CrossoverProb).Float64(gc.MutationProb).Uint64(gc.Seed)
		man.ConfigKey = hex.EncodeToString([]byte(k.Sum()))
		man.Traces = []obs.TraceRef{{Name: tr.Name, Fingerprint: experiments.Fingerprint(tr)}}
		man.Seed = int64(*seed)
		man.Workers = parallel.DefaultWorkers(*jobs)
		engine := res.Engine
		man.Engine = &engine
		man.Metrics = gc.Metrics.Snapshot()
		man.Finish(clk)
		path, err := man.Write(*outDir)
		if err != nil {
			fatal(err)
		}
		tracePath := strings.TrimSuffix(path, ".manifest.json") + ".trace.json"
		tf, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		if err := gc.Recorder.WriteChrome(tf); err != nil {
			fatal(err)
		}
		if err := tf.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cohort-opt: wrote %s and %s\n", path, tracePath)
	}

	fmt.Printf("workload %s: %d oracle evaluations, feasible %v\n",
		tr.Name, res.Evaluations, res.Eval.Feasible())
	if res.Engine.Jobs > 0 {
		fmt.Printf("memo-cache: %s\n", res.Engine)
	}
	fmt.Printf("objective (avg worst-case cycles per request, summed over timed cores): %.2f\n",
		res.Eval.Objective)
	g := 0
	for i, th := range res.Timers {
		line := fmt.Sprintf("  θ_%d = %v", i, th)
		if timedMask[i] {
			line += fmt.Sprintf("   (θ_is = %v)", res.ThetaIS[g])
			g++
		}
		fmt.Println(line)
	}
	fmt.Println("per-core bounds at the chosen timers:")
	for _, b := range res.Eval.PerCore {
		fmt.Printf("  core %d: WCL %d, guaranteed hits %d / misses %d, WCML bound %d\n",
			b.Core, b.WCL, b.MHit, b.MMiss, b.WCMLBound)
	}
	if len(res.BestHistory) > 0 {
		fmt.Printf("best fitness: first generation %.2f → last %.2f\n",
			res.BestHistory[0], res.BestHistory[len(res.BestHistory)-1])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cohort-opt:", err)
	os.Exit(1)
}
