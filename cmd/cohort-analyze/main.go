// Command cohort-analyze runs the paper's timing analysis without any
// simulation: per-core WCL (Eq. 1) and WCML bounds (Eq. 2/3), the θ_is
// saturation sweep, a task-set schedulability check, and the hardware
// overhead bill. It is the fast design-space companion to cohort-sim.
//
// Usage:
//
//	cohort-analyze -bench fft -timers 300,20,20,-1
//	cohort-analyze -bench lu  -timers 100,100,-1,-1 -deadlines 200000,0,0,0
//	cohort-analyze -bench fft -timers 300,20,20,20 -sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cohort"
)

func main() {
	var (
		bench     = flag.String("bench", "fft", "benchmark profile")
		cores     = flag.Int("cores", 4, "number of cores")
		scale     = flag.Float64("scale", 0.05, "access-count scale factor")
		seed      = flag.Uint64("seed", 42, "trace generator seed")
		timers    = flag.String("timers", "300,20,20,-1", "comma-separated per-core timers")
		sweep     = flag.Bool("sweep", false, "print the θ_is saturation sweep per core")
		deadlines = flag.String("deadlines", "", "comma-separated per-core task deadlines in cycles (0 = none) for a schedulability check")
		levels    = flag.Int("levels", 1, "criticality levels (for the hardware bill)")
	)
	flag.Parse()

	p, err := cohort.ProfileByName(*bench)
	if err != nil {
		fatal(err)
	}
	tr := p.Scaled(*scale).Generate(*cores, 64, *seed)
	ths, err := parseTimers(*timers, *cores)
	if err != nil {
		fatal(err)
	}
	cfg, err := cohort.NewCoHoRT(*cores, *levels, ths)
	if err != nil {
		fatal(err)
	}

	bounds, err := cohort.Bounds(cfg, tr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload %s (Λ = %d per core), timers %v\n\n", tr.Name, tr.Lambda(0), ths)
	fmt.Println("per-core analysis (Eq. 1 / Eq. 2-3):")
	for _, b := range bounds {
		fmt.Printf("  core %d (θ=%-8v): WCL %6d, guaranteed hits %5d / misses %5d, WCML bound %10d\n",
			b.Core, b.Theta, b.WCL, b.MHit, b.MMiss, b.WCMLBound)
	}

	if *sweep {
		base := cohort.PaperDefaults(*cores, *levels)
		fmt.Println("\nθ_is saturation sweep:")
		for i, s := range tr.Streams {
			thIS, satHits := cohort.SaturationTimer(s, base.L1, base.Lat)
			fmt.Printf("  core %d: θ_is = %5v (%d of %d accesses guaranteed at saturation)\n",
				i, thIS, satHits, len(s))
		}
	}

	if *deadlines != "" {
		parts := strings.Split(*deadlines, ",")
		if len(parts) != *cores {
			fatal(fmt.Errorf("-deadlines has %d values for %d cores", len(parts), *cores))
		}
		var tasks []cohort.Task
		for i, s := range parts {
			d, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil || d < 0 {
				fatal(fmt.Errorf("bad deadline %q", s))
			}
			if d == 0 {
				d = 1 << 60 // unconstrained
			}
			tasks = append(tasks, cohort.Task{
				Name:        fmt.Sprintf("task%d", i),
				Core:        i,
				Criticality: 1,
				Deadline:    d,
			})
		}
		vs, err := cohort.Admission(tasks, bounds, 1, *levels)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nschedulability:")
		for _, v := range vs {
			verdict := "OK"
			if !v.Schedulable() {
				verdict = "DEADLINE MISS POSSIBLE"
			}
			fmt.Printf("  %s: WCET bound %d vs deadline %d — %s\n",
				v.Task.Name, v.WCET, v.Task.Deadline, verdict)
		}
		if cohort.SetSchedulable(vs) {
			fmt.Println("  task set schedulable")
		} else {
			fmt.Println("  task set NOT schedulable")
		}
	}

	rep, err := cohort.HardwareCost(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%s\n", rep)
}

func parseTimers(s string, n int) ([]cohort.Timer, error) {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("-timers has %d values for %d cores", len(parts), n)
	}
	out := make([]cohort.Timer, n)
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad timer %q: %v", p, err)
		}
		out[i] = cohort.Timer(v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cohort-analyze:", err)
	os.Exit(1)
}
