// Command cohort-sim runs one cycle-accurate simulation: a workload (a named
// synthetic benchmark or a trace file) on a platform (CoHoRT with explicit
// timers, or one of the paper's baselines), printing per-core measurements
// and, when available, the analytical WCML bounds next to them.
//
// Usage:
//
//	cohort-sim -bench fft -timers 300,20,20,20
//	cohort-sim -bench radix -system pendulum -crit 1,1,0,0
//	cohort-sim -trace fft.trace -system pcc
//	cohort-sim -bench fft -timers 300,20,20,-1 -switch 5000:2
package main

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cohort"
	"cohort/internal/cliutil"
	"cohort/internal/experiments"
	"cohort/internal/obs"
	"cohort/internal/parallel"
)

func main() {
	cu := cliutil.New("cohort-sim")
	cu.RegisterObs(flag.CommandLine)
	var (
		bench      = flag.String("bench", "fft", "benchmark profile (ignored with -trace)")
		traceFile  = flag.String("trace", "", "read the workload from this trace file (text or binary)")
		dinFiles   = flag.String("din", "", "comma-separated Dinero (.din) files, one per core")
		cores      = flag.Int("cores", 4, "number of cores")
		scale      = flag.Float64("scale", 0.05, "access-count scale factor")
		seed       = flag.Uint64("seed", 42, "trace generator seed")
		system     = flag.String("system", "cohort", "platform: cohort | pcc | pendulum | msifcfs")
		timers     = flag.String("timers", "", "comma-separated per-core timers for cohort (e.g. 300,20,20,-1)")
		crit       = flag.String("crit", "", "comma-separated 0/1 criticality mask for pendulum (default: all critical)")
		nonperfect = flag.Bool("nonperfect", false, "use the non-perfect LLC with a fixed-latency DRAM")
		switches   = flag.String("switch", "", "scheduled mode switches as cycle:mode[,cycle:mode...] (cohort with levels)")
		levels     = flag.Int("levels", 1, "number of criticality levels/modes")
		mesi       = flag.Bool("mesi", false, "use the MESI snooping protocol instead of MSI")
		hist       = flag.Bool("hist", false, "print per-core latency histograms")
		hwOverhead = flag.Bool("hwcost", false, "print the CoHoRT hardware-overhead report")
		vcdFile    = flag.String("vcd", "", "write a Value Change Dump of the run to this file")
		checkInv   = flag.Bool("check", false, "validate protocol invariants after every bus transaction (slower)")
		chromeFile = flag.String("chrome", "", "write a Chrome trace (Perfetto) of the run to this file")
		attr       = flag.Bool("attr", false, "register the per-core WCML latency-attribution metrics (with -out-dir: included in the manifest snapshot)")
	)
	flag.Parse()

	clk := obs.Clock(obs.WallClock{})
	log, err := cu.Logger(os.Stderr, clk)
	if err != nil {
		fatal(err)
	}

	tr, err := loadTrace(*traceFile, *dinFiles, *bench, *cores, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	n := tr.NumCores()

	var cfg *cohort.SystemConfig
	switch *system {
	case "cohort":
		ths, err := parseTimers(*timers, n)
		if err != nil {
			fatal(err)
		}
		cfg, err = cohort.NewCoHoRT(n, *levels, ths)
		if err != nil {
			fatal(err)
		}
	case "pcc":
		cfg = cohort.NewPCC(n)
	case "pendulum":
		mask, err := parseMask(*crit, n)
		if err != nil {
			fatal(err)
		}
		cfg = cohort.NewPENDULUM(mask)
	case "msifcfs":
		cfg = cohort.NewMSIFCFS(n)
	default:
		fatal(fmt.Errorf("unknown system %q", *system))
	}
	if *nonperfect {
		cfg.PerfectLLC = false
	}
	if *mesi {
		cfg.Snoop = cohort.SnoopMESI
	}
	if *checkInv {
		cfg.CheckInvariants = true
	}

	bounds, err := cohort.Bounds(cfg, tr)
	if err != nil {
		fatal(err)
	}
	sys, err := cohort.NewSystem(cfg, tr)
	if err != nil {
		fatal(err)
	}
	var (
		reg *obs.Registry
		rec *obs.Recorder
	)
	if cu.OutDir != "" {
		reg = obs.NewRegistry()
		if err := sys.SetMetrics(reg); err != nil {
			fatal(err)
		}
		if *attr {
			if err := sys.RegisterAttribution(reg); err != nil {
				fatal(err)
			}
		}
	}

	// Live observability. The debug server gets the tracker but NOT the
	// manifest registry: SetMetrics registers closures that read live
	// simulator state, so scraping that registry mid-run would race the
	// single-threaded simulation. The tracker's atomic counters are the
	// race-free live surface.
	tracker := obs.NewRunTracker(clk)
	rh := tracker.Register("cohort-sim", tr.Name)
	if err := sys.SetProgress(rh); err != nil {
		fatal(err)
	}
	srv, err := cu.StartServer(nil, tracker, log)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	if *chromeFile != "" {
		rec = obs.NewRecorder()
		if err := sys.SetRecorder(rec); err != nil {
			fatal(err)
		}
	}
	var closeVCD func() error
	if *vcdFile != "" {
		f, err := os.Create(*vcdFile)
		if err != nil {
			fatal(err)
		}
		rec, err := cohort.NewVCDRecorder(f, n)
		if err != nil {
			fatal(err)
		}
		if err := sys.SetTracer(rec); err != nil {
			fatal(err)
		}
		closeVCD = func() error {
			if err := rec.Close(); err != nil {
				return err
			}
			return f.Close()
		}
	}
	if *switches != "" {
		for _, part := range strings.Split(*switches, ",") {
			cm := strings.SplitN(part, ":", 2)
			if len(cm) != 2 {
				fatal(fmt.Errorf("bad -switch entry %q (want cycle:mode)", part))
			}
			cyc, err1 := strconv.ParseInt(cm[0], 10, 64)
			mode, err2 := strconv.Atoi(cm[1])
			if err1 != nil || err2 != nil {
				fatal(fmt.Errorf("bad -switch entry %q", part))
			}
			if err := sys.ScheduleModeSwitch(cyc, mode); err != nil {
				fatal(err)
			}
		}
	}
	run, err := sys.Run()
	if err != nil {
		fatal(err)
	}
	rh.Finish()
	if err := sys.CheckCoherence(); err != nil {
		fatal(fmt.Errorf("coherence check failed: %w", err))
	}

	fmt.Printf("workload %s on %s (%d cores, arbiter %s, %s transfers, perfect LLC %v)\n",
		tr.Name, *system, n, cfg.Arbiter, cfg.Transfer, cfg.PerfectLLC)
	fmt.Print(run)
	fmt.Println("per-core WCML (measured vs analytical bound):")
	for i := range run.Cores {
		b := bounds[i]
		bound := "unbounded"
		if b.WCMLBound != cohort.Unbounded {
			bound = fmt.Sprintf("%d", b.WCMLBound)
		}
		fmt.Printf("  core %d (θ=%v): measured %d, bound %s, guaranteed hits %d (achieved %d)\n",
			i, b.Theta, run.Cores[i].TotalLatency, bound, b.MHit, run.Cores[i].Hits)
	}
	if *hist {
		for i := range run.Cores {
			fmt.Printf("core %d latency distribution:\n%s", i, run.Cores[i].Latency.String())
		}
	}
	if *hwOverhead {
		rep, err := cohort.HardwareCost(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep)
	}
	if closeVCD != nil {
		if err := closeVCD(); err != nil {
			fatal(err)
		}
		log.Infof("wrote waveform to %s", *vcdFile)
	}
	if rec != nil {
		f, err := os.Create(*chromeFile)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChrome(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		log.Infof("wrote chrome trace to %s (load at ui.perfetto.dev)", *chromeFile)
	}
	if reg != nil {
		man := obs.NewManifest("cohort-sim", clk)
		man.Args = os.Args[1:]
		// The key covers the full platform description and the workload
		// content; the simulator is single-threaded, so workers is always 1.
		cfgJSON, err := json.Marshal(cfg)
		if err != nil {
			fatal(err)
		}
		k := parallel.NewKey("cohort-sim/config").Bytes(cfgJSON).Str(experiments.Fingerprint(tr)).Str(*switches)
		man.ConfigKey = hex.EncodeToString([]byte(k.Sum()))
		man.Traces = []obs.TraceRef{{Name: tr.Name, Fingerprint: experiments.Fingerprint(tr)}}
		man.Seed = int64(*seed)
		man.Workers = 1
		man.Metrics = reg.Snapshot()
		man.Finish(clk)
		path, err := man.Write(cu.OutDir)
		if err != nil {
			fatal(err)
		}
		log.Infof("wrote manifest to %s", path)
	}
}

func loadTrace(path, din, bench string, cores int, scale float64, seed uint64) (*cohort.Trace, error) {
	if din != "" {
		var streams []cohort.Stream
		for _, f := range strings.Split(din, ",") {
			fh, err := os.Open(strings.TrimSpace(f))
			if err != nil {
				return nil, err
			}
			s, err := cohort.ParseDinero(fh)
			fh.Close()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", f, err)
			}
			streams = append(streams, s)
		}
		return cohort.TraceFromStreams("dinero", streams...), nil
	}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		br := bufio.NewReader(f)
		if magic, err := br.Peek(4); err == nil && string(magic) == "CTRB" {
			return cohort.ParseBinaryTrace(br)
		}
		return cohort.ParseTrace(br)
	}
	p, err := cohort.ProfileByName(bench)
	if err != nil {
		return nil, err
	}
	return p.Scaled(scale).Generate(cores, 64, seed), nil
}

func parseTimers(s string, n int) ([]cohort.Timer, error) {
	if s == "" {
		out := make([]cohort.Timer, n)
		for i := range out {
			out[i] = 100 // a moderate default
		}
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("-timers has %d values for %d cores", len(parts), n)
	}
	out := make([]cohort.Timer, n)
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad timer %q: %v", p, err)
		}
		out[i] = cohort.Timer(v)
	}
	return out, nil
}

func parseMask(s string, n int) ([]bool, error) {
	out := make([]bool, n)
	if s == "" {
		for i := range out {
			out[i] = true
		}
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("-crit has %d values for %d cores", len(parts), n)
	}
	for i, p := range parts {
		switch strings.TrimSpace(p) {
		case "1":
			out[i] = true
		case "0":
			out[i] = false
		default:
			return nil, fmt.Errorf("bad criticality flag %q", p)
		}
	}
	return out, nil
}

func fatal(err error) {
	cliutil.Fatal("cohort-sim", err)
}
