// Package cohort is a from-scratch reproduction of "Criticality and
// Requirement Aware Heterogeneous Coherence for Mixed Criticality Systems"
// (Bayes & Hassan, DATE 2025).
//
// CoHoRT lets the cores of one multi-core platform run different cache
// coherence protocols concurrently — a time-based protocol whose per-line
// countdown timers protect cache lines in the owner's private cache, and the
// standard snooping MSI protocol — selected per core by a single timer
// register value (θ = −1 reduces the hardware to MSI). A genetic-algorithm
// optimization engine configures the timers from per-task worst-case memory
// latency (WCML) requirements, and a per-core Mode-Switch LUT re-programs
// them at run time when the mixed-criticality system changes operating mode,
// degrading low-criticality cores to MSI instead of suspending them.
//
// The package is a facade over the implementation in internal/…:
//
//   - Workloads: deterministic synthetic SPLASH-2-shaped traces
//     (Profiles, ProfileByName, Profile.Generate, ParseTrace).
//   - Platform: validated configurations for CoHoRT and the paper's
//     baselines (PaperDefaults, NewCoHoRT, NewPCC, NewPENDULUM, NewMSIFCFS).
//   - Simulation: the cycle-accurate multi-core cache simulator
//     (NewSystem, System.Run, System.ScheduleModeSwitch).
//   - Analysis: the paper's §IV timing analysis (Bounds, WCLCoHoRT,
//     GuaranteedHits, SaturationTimer).
//   - Optimization: the §V requirement-aware timer optimizer
//     (Problem, Optimize, DefaultGA).
//   - Experiments: regeneration of every evaluation artifact
//     (Fig5, Fig6, Fig7, Table1, Table2 and the ablations).
//
// A minimal end-to-end use:
//
//	profile, _ := cohort.ProfileByName("fft")
//	tr := profile.Generate(4, 64, 42)
//	cfg, _ := cohort.NewCoHoRT(4, 1, []cohort.Timer{300, 20, 20, 20})
//	sys, _ := cohort.NewSystem(cfg, tr)
//	run, _ := sys.Run()
//	fmt.Println(run)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package cohort

import (
	"io"

	"cohort/internal/analysis"
	"cohort/internal/config"
	"cohort/internal/core"
	"cohort/internal/experiments"
	"cohort/internal/hwcost"
	"cohort/internal/obs"
	"cohort/internal/opt"
	"cohort/internal/sched"
	"cohort/internal/stats"
	"cohort/internal/trace"
	"cohort/internal/vcd"
)

// --- configuration -----------------------------------------------------

// Core types re-exported from the configuration model.
type (
	// Timer is a per-core coherence timer register value θ (§III-B):
	// θ ≥ 1 selects time-based coherence, TimerMSI (−1) the snooping MSI
	// protocol, TimerNoCache (0) a non-caching core.
	Timer = config.Timer
	// SystemConfig describes a complete platform: cores with criticality
	// levels and per-mode timer LUTs, cache geometry, latencies, arbiter.
	SystemConfig = config.System
	// CoreConfig is one core's criticality, timer LUT and requirements.
	CoreConfig = config.Core
	// CacheGeometry describes one cache level.
	CacheGeometry = config.CacheGeometry
	// Latencies holds the platform's fixed access latencies.
	Latencies = config.Latencies
	// Arbiter selects the bus arbitration mechanism.
	Arbiter = config.Arbiter
	// Transfer selects direct or via-memory ownership handovers.
	Transfer = config.Transfer
)

// Timer and enum constants.
const (
	TimerMSI     = config.TimerMSI
	TimerNoCache = config.TimerNoCache
	TimerMax     = config.TimerMax

	ArbiterRROF = config.ArbiterRROF
	ArbiterRR   = config.ArbiterRR
	ArbiterFCFS = config.ArbiterFCFS
	ArbiterTDM  = config.ArbiterTDM

	TransferDirect    = config.TransferDirect
	TransferViaMemory = config.TransferViaMemory
)

// PaperDefaults returns the evaluation platform of §VIII (4 cores, 16 KiB
// direct-mapped L1s, 8-way LLC, latencies 1/4/50, perfect LLC, RROF).
func PaperDefaults(nCores, levels int) *SystemConfig {
	return config.PaperDefaults(nCores, levels)
}

// NewCoHoRT configures the proposed system with the given mode-1 timers.
func NewCoHoRT(nCores, levels int, timers []Timer) (*SystemConfig, error) {
	return config.CoHoRT(nCores, levels, timers)
}

// NewPCC configures the predictable-MSI baseline (via-memory handovers).
func NewPCC(nCores int) *SystemConfig { return config.PCC(nCores) }

// NewPENDULUM configures the PENDULUM baseline (TDM, fixed timers on Cr
// cores, nCr cores served only in idle slots).
func NewPENDULUM(critical []bool) *SystemConfig { return config.PENDULUM(critical) }

// NewPENDULUMStar configures the PENDULUM* comparator ([17]): all cores
// timed under RROF — requirement-aware but neither heterogeneous nor
// criticality-aware.
func NewPENDULUMStar(timers []Timer) (*SystemConfig, error) { return config.PENDULUMStar(timers) }

// NewMSIFCFS configures the COTS baseline of Fig. 6.
func NewMSIFCFS(nCores int) *SystemConfig { return config.MSIFCFS(nCores) }

// ParseConfig decodes and validates a JSON platform description.
func ParseConfig(data []byte) (*SystemConfig, error) { return config.ParseJSON(data) }

// --- workloads -----------------------------------------------------------

// Workload types re-exported from the trace model.
type (
	// Trace is a multi-core workload, one access stream per core.
	Trace = trace.Trace
	// Stream is one core's ordered access sequence.
	Stream = trace.Stream
	// Access is a single memory reference.
	Access = trace.Access
	// Profile parameterizes the synthetic SPLASH-2-shaped generator.
	Profile = trace.Profile
	// TraceSummary aggregates descriptive statistics of a trace.
	TraceSummary = trace.Summary
)

// Access kinds.
const (
	Read  = trace.Read
	Write = trace.Write
)

// Profiles returns the benchmark suite (fft, lu, radix, ocean, barnes,
// water, cholesky, raytrace), sized after the paper's request counts.
func Profiles() []Profile { return trace.Profiles() }

// ProfileByName returns the named benchmark profile.
func ProfileByName(name string) (Profile, error) { return trace.ProfileByName(name) }

// ProfileNames lists the suite in order.
func ProfileNames() []string { return trace.ProfileNames() }

// ParseTrace decodes a trace from its text encoding.
func ParseTrace(r io.Reader) (*Trace, error) { return trace.Parse(r) }

// ParseBinaryTrace decodes a trace from the compact binary encoding
// (Trace.WriteBinary).
func ParseBinaryTrace(r io.Reader) (*Trace, error) { return trace.ParseBinary(r) }

// ParseDinero decodes one core's stream from the classic Dinero ("din")
// cache-trace format.
func ParseDinero(r io.Reader) (Stream, error) { return trace.ParseDinero(r) }

// TraceFromStreams assembles a multi-core Trace from per-core streams
// (e.g. one Dinero file per core).
func TraceFromStreams(name string, streams ...Stream) *Trace {
	return trace.FromStreams(name, streams...)
}

// SummarizeTrace computes descriptive statistics at line granularity.
func SummarizeTrace(t *Trace, lineBytes int) TraceSummary {
	return trace.Summarize(t, lineBytes)
}

// --- simulation ------------------------------------------------------------

// Simulation types.
type (
	// System is a runnable cycle-accurate simulation instance (single-use).
	System = core.System
	// RunStats holds a run's measurements.
	RunStats = stats.Run
	// CoreStats holds one core's measurements.
	CoreStats = stats.Core
)

// NewSystem builds a simulator from a validated configuration and a
// workload with one stream per core.
func NewSystem(cfg *SystemConfig, tr *Trace) (*System, error) { return core.New(cfg, tr) }

// --- analysis ---------------------------------------------------------------

// CoreBound is one core's analytical result (Eq. 1 + Eq. 2/3).
type CoreBound = analysis.CoreBound

// Unbounded marks a latency with no analytical bound.
const Unbounded = analysis.Unbounded

// Bounds computes per-core analytical WCML bounds for a configuration and
// workload, dispatching on the system variant.
func Bounds(cfg *SystemConfig, tr *Trace) ([]CoreBound, error) { return analysis.Bounds(cfg, tr) }

// WCLCoHoRT evaluates Equation 1 for core i under the given timer vector.
func WCLCoHoRT(lat Latencies, timers []Timer, i int) int64 {
	return analysis.WCLCoHoRT(lat, timers, i)
}

// GuaranteedHits runs the in-isolation static cache analysis (M_hit(θ)).
func GuaranteedHits(s Stream, geom CacheGeometry, lat Latencies, theta Timer, wcl int64) (hits, misses int64) {
	return analysis.GuaranteedHits(s, geom, lat, theta, wcl)
}

// SaturationTimer sweeps θ in isolation and returns θ_is (§V).
func SaturationTimer(s Stream, geom CacheGeometry, lat Latencies) (Timer, int64) {
	return analysis.SaturationTimer(s, geom, lat)
}

// --- optimization -------------------------------------------------------------

// Optimizer types.
type (
	// Problem describes one timer-optimization instance (§V).
	Problem = opt.Problem
	// GAConfig tunes the genetic algorithm.
	GAConfig = opt.GAConfig
	// OptimizeResult is the optimizer's output.
	OptimizeResult = opt.Result
)

// DefaultGA returns the GA parameters used by the experiment harness.
func DefaultGA(seed uint64) GAConfig { return opt.DefaultGA(seed) }

// Optimize runs the genetic algorithm over timer vectors.
func Optimize(p *Problem, gc GAConfig) (*OptimizeResult, error) { return opt.Optimize(p, gc) }

// HCConfig tunes the hill-climbing optimizer.
type HCConfig = opt.HCConfig

// DefaultHC returns the hill-climbing parameters used by the ablation.
func DefaultHC(seed uint64) HCConfig { return opt.DefaultHC(seed) }

// HillClimb runs the alternative optimization engine (random-restart
// coordinate descent) over the same Fig. 2a oracle loop.
func HillClimb(p *Problem, hc HCConfig) (*OptimizeResult, error) { return opt.HillClimb(p, hc) }

// --- experiments ---------------------------------------------------------------

// Experiment types.
type (
	// ExperimentOptions sizes the experiment harness.
	ExperimentOptions = experiments.Options
	// Fig5Result / Fig6Result / Fig7Result reproduce the paper's figures.
	Fig5Result = experiments.Fig5Result
	Fig6Result = experiments.Fig6Result
	Fig7Result = experiments.Fig7Result
	// Table2Result regenerates Table II through the optimizer.
	Table2Result = experiments.Table2Result
	// ResultTable is an aligned text/markdown table.
	ResultTable = stats.Table
)

// DefaultExperimentOptions returns the sizing used by cmd/cohort-bench.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// Fig5 regenerates one sub-figure of Fig. 5 ("all-cr", "2cr-2ncr",
// "1cr-3ncr").
func Fig5(o ExperimentOptions, scenario string) (*Fig5Result, error) {
	return experiments.Fig5(o, scenario)
}

// Fig6 regenerates one sub-figure of Fig. 6.
func Fig6(o ExperimentOptions, scenario string) (*Fig6Result, error) {
	return experiments.Fig6(o, scenario)
}

// Fig7 regenerates the mode-switch experiment of Fig. 7.
func Fig7(o ExperimentOptions, benchmark string, f2, f3 float64) (*Fig7Result, error) {
	return experiments.Fig7(o, benchmark, f2, f3)
}

// Table1 renders the challenge matrix of Table I.
func Table1() *ResultTable { return experiments.Table1() }

// Table2 regenerates Table II by running the optimizer per mode.
func Table2(o ExperimentOptions, benchmark string) (*Table2Result, error) {
	return experiments.Table2(o, benchmark)
}

// --- hardware cost, scheduling, observability -------------------------------

// HWCostReport summarizes the CoHoRT hardware overhead of a configuration
// (per-line countdown counters, timer register, Mode-Switch LUT; §III-B).
type HWCostReport = hwcost.Report

// HardwareCost computes the silicon-overhead report for a configuration.
func HardwareCost(cfg *SystemConfig) (HWCostReport, error) { return hwcost.ForSystem(cfg) }

// Scheduling types (the §II task model made actionable).
type (
	// Task is one mixed-criticality task mapped to one core.
	Task = sched.Task
	// Verdict is one task's admission result at one mode.
	Verdict = sched.Verdict
)

// Admission checks every task at the given mode against per-core WCML
// bounds.
func Admission(tasks []Task, bounds []CoreBound, mode, levels int) ([]Verdict, error) {
	return sched.Admission(tasks, bounds, mode, levels)
}

// SetSchedulable reports whether every verdict passes.
func SetSchedulable(vs []Verdict) bool { return sched.SetSchedulable(vs) }

// LowestFeasibleMode returns the first mode ≥ from at which the task set is
// schedulable — the selection policy of the Fig. 7 experiment.
func LowestFeasibleMode(tasks []Task, boundsPerMode [][]CoreBound, from int) (mode int, verdicts []Verdict, ok bool, err error) {
	return sched.LowestFeasibleMode(tasks, boundsPerMode, from)
}

// Observability types.
type (
	// TraceEvent is one simulator event delivered to an attached Tracer.
	TraceEvent = core.TraceEvent
	// Tracer receives simulator events (see System.SetTracer).
	Tracer = core.Tracer
	// VCDRecorder renders the event stream as a Value Change Dump.
	VCDRecorder = vcd.Recorder
	// Governor is the closed-loop mode-switch controller.
	Governor = core.Governor
	// GovernorDecision is one governor sampling point.
	GovernorDecision = core.GovernorDecision
	// LatencySample is one point of a per-core latency time series
	// (System.SampleLatency / System.LatencySeries).
	LatencySample = core.LatencySample
	// LatencyHistogram is a power-of-two-bucket latency distribution.
	LatencyHistogram = stats.Histogram
)

// Trace event kinds.
const (
	EvBroadcast  = core.EvBroadcast
	EvData       = core.EvData
	EvMissStart  = core.EvMissStart
	EvMissEnd    = core.EvMissEnd
	EvInvalidate = core.EvInvalidate
	EvModeSwitch = core.EvModeSwitch
)

// Snooping protocol families.
const (
	SnoopMSI  = config.SnoopMSI
	SnoopMESI = config.SnoopMESI
)

// NewVCDRecorder builds a waveform recorder for nCores cores writing to w;
// attach it with System.SetTracer and Close it after Run.
func NewVCDRecorder(w io.Writer, nCores int) (*VCDRecorder, error) {
	return vcd.NewRecorder(w, nCores)
}

// Metrics / span / manifest types (internal/obs; see DESIGN.md §10).
type (
	// MetricsRegistry collects deterministic counters, gauges and histograms
	// from an attached System (System.SetMetrics), optimizer (GAConfig.Metrics)
	// or experiment run (ExperimentOptions.Metrics).
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is the registry state in canonical order.
	MetricsSnapshot = obs.Snapshot
	// MetricLabel is one key=value metric dimension.
	MetricLabel = obs.Label
	// SpanRecorder collects spans and instants and exports Chrome trace-event
	// JSON for Perfetto (System.SetRecorder, GAConfig.Recorder,
	// ExperimentOptions.Recorder).
	SpanRecorder = obs.Recorder
	// RunManifest describes one CLI invocation for cmd/cohort-report.
	RunManifest = obs.Manifest
	// ManifestClock abstracts the wall clock used only for manifests.
	ManifestClock = obs.Clock
	// WallClock is the production ManifestClock.
	WallClock = obs.WallClock
	// ManualClock is a fixed-time ManifestClock for reproducible manifests.
	ManualClock = obs.ManualClock
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewSpanRecorder returns an empty span recorder.
func NewSpanRecorder() *SpanRecorder { return obs.NewRecorder() }

// NewRunManifest starts a manifest for the named tool.
func NewRunManifest(tool string, clk ManifestClock) *RunManifest { return obs.NewManifest(tool, clk) }

// LoadManifests reads every *.manifest.json in dir in sorted order.
func LoadManifests(dir string) ([]*RunManifest, error) { return obs.LoadDir(dir) }
